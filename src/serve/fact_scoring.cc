#include "serve/fact_scoring.h"

#include <algorithm>

#include "truth/ltm_incremental.h"

namespace ltm {
namespace serve {

QualityLookup BuildQualityLookup(const SourceQuality& quality,
                                 const StringInterner& sources,
                                 const LtmOptions& options) {
  QualityLookup lookup;
  const size_t n = std::min(sources.size(), quality.NumSources());
  lookup.by_name.reserve(n);
  for (SourceId s = 0; s < n; ++s) {
    lookup.by_name.emplace(
        std::string(sources.Get(s)),
        std::make_pair(quality.sensitivity[s], quality.specificity[s]));
  }
  lookup.prior_sensitivity = options.alpha1.Mean();
  lookup.prior_specificity = 1.0 - options.alpha0.Mean();
  lookup.no_claim_prior = options.beta.Mean();
  return lookup;
}

Result<std::vector<double>> ScoreSlice(const Dataset& slice,
                                       const QualityLookup& lookup,
                                       const LtmOptions& options,
                                       const RunContext& ctx) {
  SourceQuality sliced;
  const size_t n = slice.raw.NumSources();
  sliced.sensitivity.resize(n);
  sliced.specificity.resize(n);
  sliced.precision.resize(n, 0.0);
  sliced.accuracy.resize(n, 0.0);
  sliced.expected_counts.resize(n);
  for (SourceId s = 0; s < n; ++s) {
    const auto it = lookup.by_name.find(std::string(slice.raw.sources().Get(s)));
    if (it != lookup.by_name.end()) {
      sliced.sensitivity[s] = it->second.first;
      sliced.specificity[s] = it->second.second;
    } else {
      sliced.sensitivity[s] = lookup.prior_sensitivity;
      sliced.specificity[s] = lookup.prior_specificity;
    }
  }
  LtmIncremental scorer(std::move(sliced), options);
  LTM_ASSIGN_OR_RETURN(const TruthResult result,
                       scorer.Run(ctx, slice.facts, slice.graph));
  return result.estimate.probability;
}

}  // namespace serve
}  // namespace ltm
