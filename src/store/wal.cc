#include "store/wal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/hash.h"
#include "store/record_io.h"

#if !defined(_WIN32)
#include <unistd.h>
#define LTM_WAL_HAVE_FSYNC 1
#endif

namespace ltm {
namespace store {

namespace {

constexpr size_t kRecordHeaderSize = 12;  // u32 size + u64 checksum

std::string HeaderForVersion(uint32_t version) {
  std::string header(kWalMagic, 4);
  header.append(reinterpret_cast<const char*>(&version), sizeof(version));
  return header;
}

std::string CanonicalHeader() { return HeaderForVersion(kWalVersion); }

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path) {
  std::error_code ec;
  const uint64_t existing = std::filesystem::exists(path, ec)
                                ? std::filesystem::file_size(path, ec)
                                : 0;
  // Appends must match the record format of an existing log, so peek at
  // the header version before opening for append. A version this build
  // cannot WRITE is rejected here; ReplayWal owns read-side validation.
  uint32_t version = kWalVersion;
  if (existing >= kWalHeaderSize) {
    std::ifstream in(path, std::ios::binary);
    char header[kWalHeaderSize] = {};
    if (!in.read(header, kWalHeaderSize)) {
      return Status::IOError("cannot read WAL header: " + path);
    }
    if (std::memcmp(header, kWalMagic, 4) != 0) {
      return Status::InvalidArgument("corrupt WAL: bad header magic: " + path);
    }
    std::memcpy(&version, header + 4, sizeof(version));
    if (version != kWalVersion && version != kWalLegacyVersion) {
      return Status::InvalidArgument(
          "unsupported WAL version " + std::to_string(version) +
          " (this build writes version " + std::to_string(kWalVersion) +
          "): " + path);
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL for appending: " + path);
  }
  WalWriter writer(file, path, version);
  if (existing < kWalHeaderSize) {
    // New or header-torn file: (re)write the header. fopen("ab") appends,
    // so a partial header must have been truncated away by the caller;
    // an empty file is the normal fresh-WAL case. (`writer` owns `file`
    // and closes it when the error return destroys it.)
    if (existing != 0) {
      return Status::InvalidArgument(
          "WAL has a torn header; truncate it to 0 bytes before opening: " +
          path);
    }
    const std::string header = CanonicalHeader();
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
      return Status::IOError("cannot write WAL header: " + path);
    }
    LTM_RETURN_IF_ERROR(writer.Sync());
  }
  return writer;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      version_(other.version_),
      appended_(other.appended_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    version_ = other.version_;
    appended_ = other.appended_;
    other.file_ = nullptr;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const WalRecord& record) {
  LTM_RETURN_IF_ERROR(FailpointCheck("wal-append"));
  ByteWriter payload;
  payload.PutU8(record.observation);
  if (version_ >= 2) payload.PutU64(record.seq);
  payload.PutString(record.entity);
  payload.PutString(record.attribute);
  payload.PutString(record.source);

  const std::string& bytes = payload.bytes();
  char header[kRecordHeaderSize];
  const uint32_t size = static_cast<uint32_t>(bytes.size());
  std::memcpy(header, &size, sizeof(size));
  const uint64_t checksum = Fnv1a64(bytes);
  std::memcpy(header + sizeof(size), &checksum, sizeof(checksum));
  if (std::fwrite(header, 1, kRecordHeaderSize, file_) != kRecordHeaderSize ||
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("WAL append failed: " + path_);
  }
  ++appended_;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed: " + path_);
  }
#ifdef LTM_WAL_HAVE_FSYNC
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("WAL fsync failed: " + path_);
  }
#endif
  return Status::OK();
}

Result<WalReplay> ReplayWal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open WAL: " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("WAL read failed: " + path);
  return ReplayWalBytes(file, path);
}

Result<WalReplay> ReplayWalBytes(std::string_view file,
                                 const std::string& path) {
  const std::string canonical = CanonicalHeader();
  const std::string legacy = HeaderForVersion(kWalLegacyVersion);
  if (file.size() < kWalHeaderSize) {
    // A header prefix (including an empty file) is a torn fresh WAL:
    // zero records were ever durable. Anything else is corruption. Both
    // readable header versions count as valid prefixes.
    if (canonical.compare(0, file.size(), file) != 0 &&
        legacy.compare(0, file.size(), file) != 0) {
      return Status::InvalidArgument("corrupt WAL: bad header magic: " + path);
    }
    WalReplay replay;
    replay.valid_bytes = 0;
    replay.torn_tail = !file.empty();  // an empty file drops no bytes
    return replay;
  }
  uint32_t version = kWalVersion;
  if (file.compare(0, kWalHeaderSize, canonical) != 0) {
    if (std::memcmp(file.data(), kWalMagic, 4) != 0) {
      return Status::InvalidArgument("corrupt WAL: bad header magic: " + path);
    }
    std::memcpy(&version, file.data() + 4, sizeof(version));
    if (version != kWalLegacyVersion) {
      return Status::InvalidArgument(
          "unsupported WAL version " + std::to_string(version) +
          " (this build reads versions " + std::to_string(kWalLegacyVersion) +
          "-" + std::to_string(kWalVersion) + "): " + path);
    }
  }

  WalReplay replay;
  size_t pos = kWalHeaderSize;
  replay.valid_bytes = pos;
  while (pos + kRecordHeaderSize <= file.size()) {
    uint32_t size = 0;
    uint64_t checksum = 0;
    std::memcpy(&size, file.data() + pos, sizeof(size));
    std::memcpy(&checksum, file.data() + pos + sizeof(size), sizeof(checksum));
    const size_t payload_at = pos + kRecordHeaderSize;
    if (size > file.size() - payload_at) break;  // torn mid-payload
    if (Fnv1a64(file.data() + payload_at, size) != checksum) break;

    ByteReader reader(file.data() + payload_at, size);
    WalRecord record;
    // A checksummed payload that fails structural parsing is corruption
    // that FNV-1a happened to miss; stop the scan there like a torn tail
    // (the prefix before it is still intact).
    auto obs = reader.GetU8();
    if (!obs.ok()) break;
    record.observation = *obs;
    if (version >= 2) {
      auto seq = reader.GetU64();
      if (!seq.ok()) break;
      record.seq = *seq;
    }
    auto entity = reader.GetString();
    auto attribute = reader.GetString();
    auto source = reader.GetString();
    if (!entity.ok() || !attribute.ok() || !source.ok() ||
        reader.Remaining() != 0) {
      break;
    }
    record.entity = std::move(*entity);
    record.attribute = std::move(*attribute);
    record.source = std::move(*source);
    replay.records.push_back(std::move(record));
    pos = payload_at + size;
    replay.valid_bytes = pos;
  }
  replay.torn_tail = replay.valid_bytes != file.size();
  return replay;
}

}  // namespace store
}  // namespace ltm
