#ifndef LTM_EXT_ENTITY_CLUSTER_H_
#define LTM_EXT_ENTITY_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "truth/ltm.h"
#include "truth/options.h"
#include "truth/source_quality.h"

namespace ltm {
namespace ext {

/// Controls for entity-specific quality (paper §7): a source's quality
/// may vary across entity segments (e.g. a feed accurate on blockbusters
/// but sloppy on indie films). Entities are clustered by their
/// source-coverage fingerprint with k-means, then LTM runs per cluster so
/// each cluster gets its own source-quality estimates; the shared prior
/// regularizes small clusters.
struct EntityClusterOptions {
  LtmOptions ltm;
  size_t num_clusters = 2;
  int kmeans_iterations = 20;
  uint64_t seed = 13;
};

struct EntityClusterResult {
  /// Cluster id per entity (indexed by EntityId).
  std::vector<uint32_t> cluster_of_entity;
  /// Truth estimate over the original FactIds.
  TruthEstimate estimate;
  /// Per-cluster two-sided quality (indexed by cluster, then SourceId in
  /// the original source id space).
  std::vector<SourceQuality> cluster_quality;
};

/// Clusters entities, fits LTM per cluster, and stitches the per-cluster
/// posteriors back into a single estimate over the dataset's fact ids.
EntityClusterResult RunEntityClusteredLtm(const Dataset& dataset,
                                          const EntityClusterOptions& options);

}  // namespace ext
}  // namespace ltm

#endif  // LTM_EXT_ENTITY_CLUSTER_H_
