#ifndef LTM_DATA_TYPES_H_
#define LTM_DATA_TYPES_H_

#include <cstdint>

namespace ltm {

/// Dense integer ids handed out by the interners. Ids are contiguous from 0
/// within one RawDatabase, so they index directly into vectors everywhere.
using EntityId = uint32_t;
using AttributeId = uint32_t;
using SourceId = uint32_t;
/// Id of a distinct (entity, attribute) pair (paper Definition 2).
using FactId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t kInvalidId = UINT32_MAX;

}  // namespace ltm

#endif  // LTM_DATA_TYPES_H_
