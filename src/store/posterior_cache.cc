#include "store/posterior_cache.h"

namespace ltm {
namespace store {

PosteriorCache::PosteriorCache(size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr) {
  obs::MetricsRegistry* reg =
      metrics != nullptr ? metrics : owned_metrics_.get();
  hits_ = reg->counter("ltm_cache_posterior_hits_total");
  misses_ = reg->counter("ltm_cache_posterior_misses_total");
  coalesced_ = reg->counter("ltm_cache_posterior_coalesced_total");
  puts_ = reg->counter("ltm_cache_posterior_puts_total");
  evictions_ = reg->counter("ltm_cache_posterior_evictions_total");
  size_gauge_ = reg->gauge("ltm_cache_posterior_size");
  reg->gauge("ltm_cache_posterior_capacity")
      ->Set(static_cast<int64_t>(capacity_));
}

std::optional<double> PosteriorCache::Get(const std::string& fact_key,
                                          uint64_t epoch) {
  MutexLock lock(mutex_);
  auto it = index_.find(fact_key);
  if (it == index_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    if (epoch > it->second->epoch) {
      // Stale entry: computed against evidence older than the reader's.
      // Evict eagerly so the slot is free for the recomputed value.
      lru_.erase(it->second);
      index_.erase(it);
      evictions_->Increment();
      size_gauge_->Set(static_cast<int64_t>(lru_.size()));
    }
    // A reader still at an older epoch just misses: the cached entry is
    // fresher than the reader, so evicting it here would let that
    // reader's follow-up Put re-insert a stale posterior unguarded —
    // the same clobber Put's downgrade check exists to stop.
    misses_->Increment();
    return std::nullopt;
  }
  hits_->Increment();
  if (it->second->writer != std::this_thread::get_id()) {
    coalesced_->Increment();
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->posterior;
}

void PosteriorCache::Put(const std::string& fact_key, uint64_t epoch,
                         double posterior) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  puts_->Increment();
  auto it = index_.find(fact_key);
  if (it != index_.end()) {
    // A slow writer that materialized against an older store state must
    // not clobber a posterior computed after the epoch advanced — serving
    // would then hand out evidence-stale values until the next advance.
    // Same-epoch writes refresh (recomputation is idempotent).
    if (epoch < it->second->epoch) return;
    it->second->epoch = epoch;
    it->second->posterior = posterior;
    it->second->writer = std::this_thread::get_id();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{fact_key, epoch, posterior, std::this_thread::get_id()});
  index_[fact_key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_->Increment();
  }
  size_gauge_->Set(static_cast<int64_t>(lru_.size()));
}

void PosteriorCache::Clear() {
  MutexLock lock(mutex_);
  evictions_->Increment(lru_.size());
  lru_.clear();
  index_.clear();
  size_gauge_->Set(0);
}

CacheStats PosteriorCache::Stats() const {
  MutexLock lock(mutex_);
  CacheStats stats;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.coalesced = coalesced_->Value();
  stats.puts = puts_->Value();
  stats.evictions = evictions_->Value();
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

size_t PosteriorCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace store
}  // namespace ltm
