#include "data/tsv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_util.h"

namespace ltm {
namespace {

class TsvIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  std::string dir_;
};

TEST_F(TsvIoTest, RoundTripRawDatabase) {
  RawDatabase raw = testing::PaperTable1();
  const std::string path = Path("roundtrip.tsv");
  ASSERT_TRUE(WriteRawDatabaseToTsv(raw, path).ok());
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRows(), raw.NumRows());
  EXPECT_EQ(loaded->NumEntities(), raw.NumEntities());
  EXPECT_EQ(loaded->NumSources(), raw.NumSources());
  for (const RawRow& row : raw.rows()) {
    auto e = loaded->entities().Find(raw.entities().Get(row.entity));
    auto a = loaded->attributes().Find(raw.attributes().Get(row.attribute));
    auto s = loaded->sources().Find(raw.sources().Get(row.source));
    ASSERT_TRUE(e && a && s);
    EXPECT_TRUE(loaded->Contains(*e, *a, *s));
  }
}

TEST_F(TsvIoTest, LoadSkipsCommentsAndBlankLines) {
  const std::string path = Path("comments.tsv");
  WriteFile(path,
            "# header comment\n"
            "\n"
            "e1\ta1\ts1\n"
            "   \n"
            "# another\n"
            "e2\ta2\ts2\n");
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumRows(), 2u);
}

TEST_F(TsvIoTest, LoadTrimsFieldWhitespace) {
  const std::string path = Path("trim.tsv");
  WriteFile(path, "  e1 \t a1\t s1 \n");
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->entities().Find("e1").has_value());
  EXPECT_TRUE(loaded->attributes().Find("a1").has_value());
  EXPECT_TRUE(loaded->sources().Find("s1").has_value());
}

TEST_F(TsvIoTest, LoadDedupsTriples) {
  const std::string path = Path("dups.tsv");
  WriteFile(path, "e\ta\ts\ne\ta\ts\n");
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumRows(), 1u);
}

TEST_F(TsvIoTest, MissingFileIsIOError) {
  auto loaded = LoadRawDatabaseFromTsv(Path("does-not-exist.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(TsvIoTest, MalformedLineIsInvalidArgumentWithLocation) {
  const std::string path = Path("bad.tsv");
  WriteFile(path, "e1\ta1\ts1\nonly-one-field\n");
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos)
      << "error should cite the line number: " << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("only-one-field"),
            std::string::npos)
      << "error should quote the offending text: "
      << loaded.status().message();
}

TEST_F(TsvIoTest, MalformedLineErrorTruncatesHugeLines) {
  const std::string path = Path("huge.tsv");
  WriteFile(path, std::string(10000, 'x') + "\n");
  auto loaded = LoadRawDatabaseFromTsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_LT(loaded.status().message().size(), 300u);
  EXPECT_NE(loaded.status().message().find("xxx"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("..."), std::string::npos);
}

TEST_F(TsvIoTest, MalformedLabelLineCitesOffendingText) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  const std::string path = Path("badlabelline.tsv");
  WriteFile(path, "Harry Potter\tDaniel Radcliffe\ttrue\nno-tabs-here\n");
  Status st = LoadTruthLabelsFromTsv(path, &ds);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find(":2"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("no-tabs-here"), std::string::npos)
      << st.message();
}

TEST_F(TsvIoTest, LoadTruthLabels) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  const std::string path = Path("labels.tsv");
  WriteFile(path,
            "Harry Potter\tDaniel Radcliffe\ttrue\n"
            "Harry Potter\tJohnny Depp\tfalse\n"
            "Harry Potter\tRupert Grint\t1\n"
            "Unknown Movie\tNobody\ttrue\n");  // Skipped silently.
  ASSERT_TRUE(LoadTruthLabelsFromTsv(path, &ds).ok());
  EXPECT_EQ(ds.labels.NumLabeled(), 3u);
  EXPECT_EQ(ds.labels.NumLabeledTrue(), 2u);
}

TEST_F(TsvIoTest, BadLabelTokenFails) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  const std::string path = Path("badlabel.tsv");
  WriteFile(path, "Harry Potter\tDaniel Radcliffe\tmaybe\n");
  Status st = LoadTruthLabelsFromTsv(path, &ds);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(TsvIoTest, WriteTruthChecksSize) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  std::vector<double> wrong_size(2, 0.5);
  Status st = WriteTruthToTsv(ds, wrong_size, 0.5, Path("truth.tsv"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(TsvIoTest, WriteTruthEmitsOneLinePerFact) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  std::vector<double> probs(ds.facts.NumFacts(), 0.9);
  probs[3] = 0.1;
  const std::string path = Path("truth_out.tsv");
  ASSERT_TRUE(WriteTruthToTsv(ds, probs, 0.5, path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  size_t trues = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("\ttrue") != std::string::npos) ++trues;
  }
  EXPECT_EQ(lines, ds.facts.NumFacts());
  EXPECT_EQ(trues, ds.facts.NumFacts() - 1);
}

}  // namespace
}  // namespace ltm
