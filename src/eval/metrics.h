#ifndef LTM_EVAL_METRICS_H_
#define LTM_EVAL_METRICS_H_

#include <vector>

#include "data/truth_labels.h"
#include "eval/confusion.h"

namespace ltm {

/// Point metrics of a truth estimate against labeled facts at one decision
/// threshold — the quantities of the paper's Table 7 (one-sided: precision,
/// recall, FPR; two-sided: accuracy, F1).
struct PointMetrics {
  ConfusionMatrix confusion;
  double threshold = 0.5;

  double precision() const { return confusion.Precision(); }
  double recall() const { return confusion.Recall(); }
  double fpr() const { return confusion.FalsePositiveRate(); }
  double accuracy() const { return confusion.Accuracy(); }
  double f1() const { return confusion.F1(); }
};

/// Grades `fact_probability` (one entry per FactId) against the labeled
/// subset of `labels`. A fact is predicted true iff its probability is
/// >= `threshold` (paper §5.2 uses 0.5). Unlabeled facts are ignored.
PointMetrics EvaluateAtThreshold(const std::vector<double>& fact_probability,
                                 const TruthLabels& labels, double threshold);

}  // namespace ltm

#endif  // LTM_EVAL_METRICS_H_
