// Streaming integration: the online deployment of §5.4. A bootstrap batch
// establishes source quality; daily chunks of new movies are resolved in
// O(claims) with LTMinc (Eq. 3); the model periodically refits batch-style
// on the cumulative data. Compares incremental accuracy and latency
// against re-running batch LTM on every chunk.

#include <cstdio>
#include <numeric>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "ext/streaming.h"
#include "synth/labeling.h"
#include "synth/movie_simulator.h"
#include "truth/ltm.h"

int main() {
  // One world, split into a bootstrap history + 6 arriving chunks.
  ltm::synth::MovieSimOptions gen;
  gen.num_movies = 6000;
  ltm::Dataset world = ltm::synth::GenerateMovieDataset(gen);
  std::printf("%s\n\n", world.SummaryString().c_str());

  const size_t chunk_count = 6;
  const size_t chunk_size = 150;
  auto streamed = ltm::synth::SampleEntities(
      world, chunk_count * chunk_size, 99);
  auto [history, arrivals] = world.SplitByEntities(streamed);

  // Slice `arrivals` into per-chunk datasets (entities are dense ids in
  // arrival order).
  std::vector<ltm::Dataset> chunks;
  const size_t arrival_entities = arrivals.raw.NumEntities();
  for (size_t c = 0; c < chunk_count; ++c) {
    std::vector<ltm::EntityId> ids;
    for (size_t e = c * arrival_entities / chunk_count;
         e < (c + 1) * arrival_entities / chunk_count; ++e) {
      ids.push_back(static_cast<ltm::EntityId>(e));
    }
    auto [rest, chunk] = arrivals.SplitByEntities(ids);
    (void)rest;
    chunks.push_back(std::move(chunk));
  }

  ltm::ext::StreamingOptions opts;
  opts.ltm = ltm::LtmOptions::ScaledDefaults(world.facts.NumFacts());
  opts.ltm.iterations = 120;
  opts.ltm.burnin = 30;
  opts.ltm.sample_gap = 2;
  opts.refit_every_chunks = 3;

  ltm::ext::StreamingPipeline pipeline(opts);
  {
    ltm::WallTimer timer;
    ltm::Status st = pipeline.Bootstrap(history);
    if (!st.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("bootstrap batch fit on %zu claims: %.2fs\n\n",
                history.graph.NumClaims(), timer.ElapsedSeconds());
  }

  ltm::TablePrinter table({"Chunk", "Facts", "LTMinc acc", "LTMinc ms",
                           "Batch acc", "Batch ms", "Refit?"});
  for (size_t c = 0; c < chunks.size(); ++c) {
    const ltm::Dataset& chunk = chunks[c];

    ltm::WallTimer inc_timer;
    auto ingested = pipeline.IngestChunk(chunk);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.status().ToString().c_str());
      return 1;
    }
    const ltm::ext::ChunkResult& r = *ingested;
    const double inc_ms = inc_timer.ElapsedMillis();
    const double inc_acc =
        ltm::EvaluateAtThreshold(r.estimate.probability, chunk.labels, 0.5)
            .accuracy();

    // Alternative: full batch LTM on this chunk alone.
    ltm::WallTimer batch_timer;
    ltm::LatentTruthModel batch(opts.ltm);
    ltm::TruthEstimate batch_est = batch.Score(chunk.facts, chunk.graph);
    const double batch_ms = batch_timer.ElapsedMillis();
    const double batch_acc =
        ltm::EvaluateAtThreshold(batch_est.probability, chunk.labels, 0.5)
            .accuracy();

    table.AddRow({std::to_string(c + 1),
                  std::to_string(chunk.facts.NumFacts()),
                  ltm::FormatDouble(inc_acc, 3),
                  ltm::FormatDouble(inc_ms, 1),
                  ltm::FormatDouble(batch_acc, 3),
                  ltm::FormatDouble(batch_ms, 1), r.refit ? "yes" : ""});
  }
  table.Print();

  // The same pipeline through the generic capability interface: any
  // StreamingTruthMethod supports Observe / Estimate / AccumulatedPriors.
  ltm::StreamingTruthMethod& stream = pipeline;
  auto last = stream.Estimate();
  ltm::UpdatedPriors priors = stream.AccumulatedPriors();
  if (last.ok()) {
    std::printf(
        "\n%s served %zu chunks; last estimate covers %zu facts; "
        "accumulated priors span %zu sources\n",
        stream.name().c_str(), pipeline.num_chunks_ingested(),
        last->estimate.probability.size(), priors.alpha0.size());
  }
  std::printf(
      "\nLTMinc resolves each chunk in O(claims) without sampling; batch\n"
      "re-fitting per chunk is slower and no more accurate on small\n"
      "increments (§5.4, §6.2.1).\n");
  return 0;
}
