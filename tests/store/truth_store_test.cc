#include "store/truth_store.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "data/snapshot.h"
#include "test_util.h"
#include "truth/ltm.h"

namespace ltm {
namespace store {
namespace {

namespace fs = std::filesystem;

class TruthStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/truth_store_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { SetFailpointHandler(nullptr); }

  std::string Dir(const std::string& name) { return root_ + "/" + name; }

  /// Appends rows [from, to) of `raw` to the store, by string.
  static Status AppendRows(TruthStore* st, const RawDatabase& raw,
                           size_t from, size_t to) {
    for (size_t i = from; i < to && i < raw.NumRows(); ++i) {
      const RawRow& row = raw.rows()[i];
      WalRecord record;
      record.entity = std::string(raw.entities().Get(row.entity));
      record.attribute = std::string(raw.attributes().Get(row.attribute));
      record.source = std::string(raw.sources().Get(row.source));
      LTM_RETURN_IF_ERROR(st->Append(record));
    }
    return st->Sync();
  }

  static std::vector<double> LtmPosteriors(const Dataset& ds) {
    LtmOptions opts = LtmOptions::ScaledDefaults(ds.facts.NumFacts());
    opts.iterations = 40;
    opts.burnin = 10;
    opts.seed = 11;
    LatentTruthModel model(opts);
    return model.Score(ds.facts, ds.graph).probability;
  }

  std::string root_;
};

void ExpectSameClaimData(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.raw.rows(), b.raw.rows());
  EXPECT_EQ(a.raw.entities().strings(), b.raw.entities().strings());
  EXPECT_EQ(a.raw.attributes().strings(), b.raw.attributes().strings());
  EXPECT_EQ(a.raw.sources().strings(), b.raw.sources().strings());
  EXPECT_EQ(a.facts.facts(), b.facts.facts());
  EXPECT_EQ(a.graph.fact_offsets(), b.graph.fact_offsets());
  EXPECT_EQ(a.graph.fact_claims(), b.graph.fact_claims());
}

TEST_F(TruthStoreTest, OpenInitializesAnEmptyStore) {
  const std::string dir = Dir("empty");
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE(fs::exists(dir + "/MANIFEST"));
  EXPECT_TRUE(fs::exists(dir + "/" + WalFileName(1)));
  TruthStoreStats stats = (*st)->Stats();
  EXPECT_EQ(stats.num_segments, 0u);
  EXPECT_EQ(stats.memtable_rows, 0u);
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->raw.NumRows(), 0u);

  // Reopening an initialized-but-empty store is a no-op.
  st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ((*st)->Stats().num_segments, 0u);
}

TEST_F(TruthStoreTest, AppendsSurviveReopenWithoutFlush) {
  const std::string dir = Dir("wal_only");
  const RawDatabase raw = testing::PaperTable1();
  {
    auto st = TruthStore::Open(dir);
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(AppendRows(st->get(), raw, 0, raw.NumRows()).ok());
  }  // no Flush: everything lives in the WAL
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ((*st)->Stats().wal_records_replayed, raw.NumRows());
  EXPECT_EQ((*st)->Stats().memtable_rows, raw.NumRows());
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(Dataset::FromRaw("batch", testing::PaperTable1()), *ds);
}

TEST_F(TruthStoreTest, MaterializeMatchesBatchThroughFlushAndCompact) {
  const std::string dir = Dir("flush_compact");
  const RawDatabase raw = testing::RandomRaw(5);
  const Dataset batch = Dataset::FromRaw("batch", testing::RandomRaw(5));
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());

  const size_t n = raw.NumRows();
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, n / 3).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, n / 3, 2 * n / 3).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 2 * n / 3, n).ok());

  EXPECT_EQ((*st)->Stats().num_segments, 2u);
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(batch, *ds);

  // Compaction merges the two segments and must not disturb row order.
  ASSERT_TRUE((*st)->Compact().ok());
  EXPECT_EQ((*st)->Stats().num_segments, 1u);
  ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(batch, *ds);

  // And the merged state round-trips a reopen.
  st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(batch, *ds);
}

// The acceptance pin: a dataset ingested as N WAL chunks, flushed,
// compacted, crashed at an arbitrary point (every failpoint a real kill
// could hit), and reopened yields BIT-IDENTICAL LTM posteriors to the
// same data loaded as one batch Dataset.
TEST_F(TruthStoreTest, PinnedPosteriorsBitIdenticalAfterCrashRecovery) {
  const RawDatabase raw = testing::RandomRaw(21);
  const size_t n = raw.NumRows();
  const std::vector<double> batch_posteriors =
      LtmPosteriors(Dataset::FromRaw("batch", testing::RandomRaw(21)));

  struct CrashCase {
    const char* point;    // failpoint substring to crash at
    bool during_compact;  // else during the third flush
  };
  const std::vector<CrashCase> cases = {
      {"store-flush-segment-written", false},
      {"store-flush-wal-rotated", false},
      {"MANIFEST", false},  // flush's manifest commit, pre-rename
      {"store-compact-segment-written", true},
      {"MANIFEST", true},  // compaction's manifest commit, pre-rename
  };
  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE("crash case " + std::to_string(c) + " at " +
                 cases[c].point);
    const std::string dir = Dir("crash_" + std::to_string(c));
    {
      auto st = TruthStore::Open(dir);
      ASSERT_TRUE(st.ok());
      ASSERT_TRUE(AppendRows(st->get(), raw, 0, n / 4).ok());
      ASSERT_TRUE((*st)->Flush().ok());
      ASSERT_TRUE(AppendRows(st->get(), raw, n / 4, n / 2).ok());
      ASSERT_TRUE((*st)->Flush().ok());
      ASSERT_TRUE(AppendRows(st->get(), raw, n / 2, 3 * n / 4).ok());

      const std::string point = cases[c].point;
      ScopedFailpoint crash([point](std::string_view at) {
        return at.find(point) != std::string_view::npos
                   ? Status::Internal("injected crash at " + std::string(at))
                   : Status::OK();
      });
      const Status st_op =
          cases[c].during_compact ? (*st)->Compact() : (*st)->Flush();
      ASSERT_FALSE(st_op.ok());
      // The store object is discarded here without any cleanup — the
      // directory is exactly what a SIGKILL at the failpoint leaves.
    }
    auto st = TruthStore::Open(dir);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_TRUE(AppendRows(st->get(), raw, 3 * n / 4, n).ok());
    auto ds = (*st)->Materialize();
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    EXPECT_EQ(LtmPosteriors(*ds), batch_posteriors);
    // A verify pass after recovery sees a consistent store.
    auto report = TruthStore::Verify(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  // Control: the uninterrupted chunked path with a final compaction.
  const std::string dir = Dir("clean");
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, n / 2).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, n / 2, n).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE((*st)->Compact().ok());
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(LtmPosteriors(*ds), batch_posteriors);
}

TEST_F(TruthStoreTest, TornWalTailIsTruncatedAndAppendsResume) {
  const std::string dir = Dir("torn");
  const RawDatabase raw = testing::PaperTable1();
  {
    auto st = TruthStore::Open(dir);
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(AppendRows(st->get(), raw, 0, raw.NumRows()).ok());
  }
  // Tear the last few bytes off the WAL, as a crash mid-write would.
  const std::string wal_path = dir + "/" + WalFileName(1);
  const auto size = fs::file_size(wal_path);
  fs::resize_file(wal_path, size - 5);

  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_TRUE((*st)->Stats().recovered_torn_tail);
  EXPECT_EQ((*st)->Stats().memtable_rows, raw.NumRows() - 1);

  // The torn record's row can be re-appended and everything works.
  ASSERT_TRUE(AppendRows(st->get(), raw, raw.NumRows() - 1, raw.NumRows())
                  .ok());
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(Dataset::FromRaw("batch", testing::PaperTable1()), *ds);
}

// Regression: a crash during the very first Open can leave a torn WAL
// header with no manifest; the next Open must recover (nothing was ever
// acknowledged), not refuse forever.
TEST_F(TruthStoreTest, FreshOpenRecoversFromATornInitialWal) {
  const std::string dir = Dir("torn_init");
  fs::create_directories(dir);
  std::ofstream(dir + "/" + WalFileName(1), std::ios::binary) << "LT";
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_TRUE((*st)->Append(WalRecord{"e", "a", "s", 1}).ok());
  ASSERT_TRUE((*st)->Sync().ok());
  auto reopened = TruthStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Stats().memtable_rows, 1u);
}

// Losing only the MANIFEST must not silently re-initialize the store —
// that would reap the surviving segments/WAL as orphans and destroy
// committed data.
TEST_F(TruthStoreTest, RefusesToReinitializeOverDataWithALostManifest) {
  const std::string dir = Dir("lost_manifest");
  const RawDatabase raw = testing::PaperTable1();
  {
    auto st = TruthStore::Open(dir);
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(AppendRows(st->get(), raw, 0, 4).ok());
    ASSERT_TRUE((*st)->Flush().ok());
  }
  fs::remove(dir + "/MANIFEST");
  auto reopened = TruthStore::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(fs::exists(dir + "/" + SegmentFileName(1)));  // data intact

  // Same protection for a WAL that holds acknowledged records.
  const std::string dir2 = Dir("lost_manifest_wal");
  {
    auto st = TruthStore::Open(dir2);
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(AppendRows(st->get(), raw, 0, raw.NumRows()).ok());
  }
  fs::remove(dir2 + "/MANIFEST");
  reopened = TruthStore::Open(dir2);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(fs::exists(dir2 + "/" + WalFileName(1)));
}

TEST_F(TruthStoreTest, AutoFlushAtMemtableThreshold) {
  const std::string dir = Dir("autoflush");
  TruthStoreOptions options;
  options.memtable_flush_rows = 3;
  auto st = TruthStore::Open(dir, options);
  ASSERT_TRUE(st.ok());
  const RawDatabase raw = testing::PaperTable1();
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, raw.NumRows()).ok());
  TruthStoreStats stats = (*st)->Stats();
  EXPECT_GE(stats.num_segments, 2u);
  EXPECT_LT(stats.memtable_rows, 3u);
  EXPECT_EQ(stats.segment_rows + stats.memtable_rows, raw.NumRows());
}

TEST_F(TruthStoreTest, ZoneStatsSkipSegmentsOutsideTheEntityRange) {
  const std::string dir = Dir("zones");
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  // Segment 1 covers entities a*/b*, segment 2 covers x*/y*.
  for (const char* e : {"apple", "banana"}) {
    ASSERT_TRUE(
        (*st)->Append(WalRecord{e, "attr1", "s1", 1}).ok());
    ASSERT_TRUE(
        (*st)->Append(WalRecord{e, "attr2", "s2", 1}).ok());
  }
  ASSERT_TRUE((*st)->Flush().ok());
  for (const char* e : {"xylophone", "yak"}) {
    ASSERT_TRUE(
        (*st)->Append(WalRecord{e, "attr1", "s1", 1}).ok());
  }
  ASSERT_TRUE((*st)->Flush().ok());

  RangeScanStats stats;
  auto ds = (*st)->MaterializeEntityRange("x", "z", &stats);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(stats.segments_skipped, 1u);
  EXPECT_EQ(stats.segments_scanned, 1u);
  EXPECT_EQ(ds->raw.NumEntities(), 2u);
  EXPECT_TRUE(ds->raw.entities().Find("xylophone").has_value());
  EXPECT_FALSE(ds->raw.entities().Find("apple").has_value());

  stats = RangeScanStats();
  ds = (*st)->MaterializeEntityRange("apple", "apple", &stats);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(stats.segments_skipped, 1u);
  EXPECT_EQ(ds->raw.NumEntities(), 1u);
  EXPECT_EQ(ds->raw.NumRows(), 2u);
}

TEST_F(TruthStoreTest, EpochAdvancesOnAppendFlushAndCompact) {
  const std::string dir = Dir("epoch");
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  const uint64_t e0 = (*st)->epoch();
  ASSERT_TRUE((*st)->Append(WalRecord{"e", "a", "s", 1}).ok());
  const uint64_t e1 = (*st)->epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE((*st)->Flush().ok());
  const uint64_t e2 = (*st)->epoch();
  EXPECT_GT(e2, e1);
  ASSERT_TRUE((*st)->Append(WalRecord{"e2", "a", "s", 1}).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE((*st)->Compact().ok());
  EXPECT_GT((*st)->epoch(), e2);
}

TEST_F(TruthStoreTest, RejectsExplicitNegativeObservations) {
  auto st = TruthStore::Open(Dir("negobs"));
  ASSERT_TRUE(st.ok());
  Status s = (*st)->Append(WalRecord{"e", "a", "s", 0});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(TruthStoreTest, VerifyReportsHealthAndFlagsOrphans) {
  const std::string dir = Dir("verify");
  const RawDatabase raw = testing::PaperTable1();
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, 4).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 4, raw.NumRows()).ok());

  auto report = TruthStore::Verify(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->segments, 1u);
  EXPECT_EQ(report->segment_rows, 4u);
  EXPECT_EQ(report->wal_records, raw.NumRows() - 4);
  EXPECT_TRUE(report->orphan_files.empty());
  EXPECT_NE(report->Summary().find("1 segment(s)"), std::string::npos);

  // A stray segment file (interrupted flush dropping) is reported...
  std::ofstream(dir + "/" + SegmentFileName(99)) << "junk";
  report = TruthStore::Verify(dir);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->orphan_files.size(), 1u);
  EXPECT_EQ(report->orphan_files[0], SegmentFileName(99));

  // ...and removed by the next Open.
  st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(fs::exists(dir + "/" + SegmentFileName(99)));

  // Corrupting a committed segment makes Verify fail loudly.
  {
    std::fstream f(dir + "/" + SegmentFileName(1),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x7f');
  }
  auto bad = TruthStore::Verify(dir);
  ASSERT_FALSE(bad.ok());
}

TEST_F(TruthStoreTest, ConcurrentAppendsDuringBackgroundCompaction) {
  const std::string dir = Dir("concurrent");
  const RawDatabase raw = testing::RandomRaw(33);
  const size_t n = raw.NumRows();
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, n / 3).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, n / 3, 2 * n / 3).ok());
  ASSERT_TRUE((*st)->Flush().ok());

  ThreadPool pool(2);
  std::shared_future<Status> compaction = (*st)->CompactAsync(pool);
  // Appends proceed while the merge runs on the pool.
  ASSERT_TRUE(AppendRows(st->get(), raw, 2 * n / 3, n).ok());
  ASSERT_TRUE(compaction.get().ok()) << compaction.get().ToString();

  EXPECT_EQ((*st)->Stats().num_segments, 1u);
  auto ds = (*st)->Materialize();
  ASSERT_TRUE(ds.ok());
  ExpectSameClaimData(Dataset::FromRaw("batch", testing::RandomRaw(33)), *ds);
  auto report = TruthStore::Verify(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

TEST_F(TruthStoreTest, CompactAsyncRejectsASecondConcurrentCompaction) {
  const std::string dir = Dir("double_compact");
  const RawDatabase raw = testing::PaperTable1();
  auto st = TruthStore::Open(dir);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 0, 4).ok());
  ASSERT_TRUE((*st)->Flush().ok());
  ASSERT_TRUE(AppendRows(st->get(), raw, 4, raw.NumRows()).ok());
  ASSERT_TRUE((*st)->Flush().ok());

  // Block the first compaction at its failpoint until released, so the
  // second CompactAsync deterministically observes it in flight.
  std::mutex mu;
  std::condition_variable cv;
  bool reached = false;
  bool release = false;
  SetFailpointHandler([&](std::string_view point) {
    if (point == "store-compact-segment-written") {
      std::unique_lock<std::mutex> lock(mu);
      reached = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return Status::OK();
  });

  ThreadPool pool(2);
  std::shared_future<Status> first = (*st)->CompactAsync(pool);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return reached; });
  }
  std::shared_future<Status> second = (*st)->CompactAsync(pool);
  EXPECT_EQ(second.get().code(), StatusCode::kFailedPrecondition);
  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  EXPECT_TRUE(first.get().ok()) << first.get().ToString();
  SetFailpointHandler(nullptr);

  // With the first one done, compaction is available again (a no-op now —
  // one segment left).
  EXPECT_TRUE((*st)->CompactAsync(pool).get().ok());
}

}  // namespace
}  // namespace store
}  // namespace ltm
