#include "truth/ltm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "truth/ltm_parallel.h"
#include "truth/registry.h"

namespace ltm {

LtmGibbs::LtmGibbs(const ClaimGraph& graph, const LtmOptions& options)
    : graph_(graph),
      options_(options),
      rng_(options.seed),
      kernel_(ResolveKernel(options.kernel, /*num_shards=*/1)) {
  alpha_[0][0] = options_.alpha0.neg;  // prior true negative count
  alpha_[0][1] = options_.alpha0.pos;  // prior false positive count
  alpha_[1][0] = options_.alpha1.neg;  // prior false negative count
  alpha_[1][1] = options_.alpha1.pos;  // prior true positive count
  log_beta_[0] = std::log(options_.beta.neg);
  log_beta_[1] = std::log(options_.beta.pos);
  tables_.Reset(alpha_);
  truth_.assign(graph_.NumFacts(), 0);
  counts_.assign(graph_.NumSources() * 4, 0);
  truth_sum_.assign(graph_.NumFacts(), 0.0);
  // Consumes the same NumFacts draws the constructor always has, but
  // defers the O(edges) count build to first use: Run() re-initializes
  // anyway, so eager counts here would be paid twice per run.
  DrawInitialTruth();
}

void LtmGibbs::DrawInitialTruth() {
  for (FactId f = 0; f < truth_.size(); ++f) {
    truth_[f] = rng_.Bernoulli(0.5) ? 1 : 0;
  }
  MutexLock lock(counts_mutex_);
  counts_stale_ = true;
}

void LtmGibbs::EnsureCounts() const {
  MutexLock lock(counts_mutex_);
  if (!counts_stale_) return;
  RecountClaims(graph_, truth_, &counts_);
  counts_stale_ = false;
}

void LtmGibbs::Initialize() {
  std::fill(truth_sum_.begin(), truth_sum_.end(), 0.0);
  num_samples_ = 0;
  DrawInitialTruth();
}

double LtmGibbs::LogConditional(FactId f, int i, bool exclude_self) const {
  // log beta_i prior factor (Eq. 2).
  double lp = std::log(i == 1 ? options_.beta.pos : options_.beta.neg);
  const int64_t self = exclude_self ? 1 : 0;
  const double alpha_sum = alpha_[i][0] + alpha_[i][1];
  for (uint32_t entry : graph_.FactClaims(f)) {
    const uint32_t cs = ClaimGraph::PackedId(entry);
    const int j = ClaimGraph::PackedObs(entry);
    const int64_t n_ij = counts_[cs * 4 + i * 2 + j] - self;
    const int64_t n_i =
        counts_[cs * 4 + i * 2] + counts_[cs * 4 + i * 2 + 1] - self;
    lp += std::log(static_cast<double>(n_ij) + alpha_[i][j]) -
          std::log(static_cast<double>(n_i) + alpha_sum);
  }
  return lp;
}

int LtmGibbs::RunSweep() {
  EnsureCounts();
  return kernel_ == LtmKernel::kFused ? RunSweepFused() : RunSweepReference();
}

int LtmGibbs::RunSweepReference() {
  int flips = 0;
  for (FactId f = 0; f < truth_.size(); ++f) {
    const int cur = truth_[f];
    const int other = 1 - cur;
    const double lp_cur = LogConditional(f, cur, /*exclude_self=*/true);
    const double lp_other = LogConditional(f, other, /*exclude_self=*/false);
    // p(flip) = p_other / (p_cur + p_other) = sigmoid(lp_other - lp_cur).
    const double p_flip = 1.0 / (1.0 + std::exp(lp_cur - lp_other));
    if (rng_.Uniform() < p_flip) {
      ++flips;
      truth_[f] = static_cast<uint8_t>(other);
      for (uint32_t entry : graph_.FactClaims(f)) {
        const uint32_t cs = ClaimGraph::PackedId(entry);
        const int j = ClaimGraph::PackedObs(entry);
        --counts_[cs * 4 + cur * 2 + j];
        ++counts_[cs * 4 + other * 2 + j];
      }
    }
  }
  return flips;
}

int LtmGibbs::RunSweepFused() {
  return FusedSweepRange(graph_, 0, static_cast<FactId>(truth_.size()),
                         &truth_, &counts_, log_beta_, &tables_, &rng_);
}

void LtmGibbs::AccumulateSample() {
  for (FactId f = 0; f < truth_.size(); ++f) {
    truth_sum_[f] += truth_[f];
  }
  ++num_samples_;
}

TruthEstimate LtmGibbs::PosteriorMean() const {
  TruthEstimate est;
  est.probability.resize(truth_.size(), 0.5);
  if (num_samples_ == 0) return est;
  for (FactId f = 0; f < truth_.size(); ++f) {
    est.probability[f] = truth_sum_[f] / num_samples_;
  }
  return est;
}

TruthEstimate LtmGibbs::Run() {
  Initialize();
  for (int iter = 0; iter < options_.iterations; ++iter) {
    RunSweep();
    if (iter >= options_.burnin &&
        (iter - options_.burnin) % options_.sample_gap == 0) {
      AccumulateSample();
    }
  }
  return PosteriorMean();
}

LatentTruthModel::LatentTruthModel(LtmOptions options)
    : options_(std::move(options)) {
  Status st = options_.Validate();
  if (!st.ok()) {
    LTM_LOG(Warning) << "invalid LtmOptions (" << st.ToString()
                     << "); falling back to defaults";
    uint64_t seed = options_.seed;
    options_ = LtmOptions();
    options_.seed = seed;
  }
}

std::string LatentTruthModel::name() const {
  return options_.positive_claims_only ? "LTMpos" : "LTM";
}

Result<TruthResult> LatentTruthModel::Run(const RunContext& ctx,
                                          const FactTable& facts,
                                          const ClaimGraph& graph) const {
  (void)facts;
  LtmOptions opts = options_;
  if (ctx.seed.has_value()) opts.seed = *ctx.seed;
  LTM_RETURN_IF_ERROR(opts.Validate());

  const ClaimGraph* active = &graph;
  ClaimGraph positive;
  if (opts.positive_claims_only) {
    positive = graph.PositiveOnly();
    active = &positive;
  }

  // The single-shard default keeps the original sequential chain;
  // anything else dispatches to the sharded sampler. The chain shape is
  // fixed by the resolved shard count — an explicit `shards` pins it
  // regardless of `threads`, otherwise it follows threads (0 = one
  // shard per hardware thread). Quality is always read off the full
  // graph.
  const int shards =
      opts.shards > 0
          ? opts.shards
          : (opts.threads <= 0 ? ThreadPool::HardwareConcurrency()
                               : opts.threads);
  if (shards > 1) {
    return RunShardedLtm(ctx, name(), graph, *active, opts);
  }

  RunObserver obs(ctx, name());
  // Construction plus the explicit Initialize() below replays the exact
  // RNG stream of LtmGibbs::Run (whose constructor also draws an initial
  // assignment), so posteriors are bit-identical to the low-level sampler
  // for a seed. The count matrix is built lazily, so the double
  // initialization costs two draw passes but only one count pass.
  LtmGibbs sampler(*active, opts);
  sampler.Initialize();

  TruthResult result;
  const double num_facts = std::max<double>(1.0, sampler.truth().size());
  TruthEstimate state;  // reused buffer for on_state reporting
  // Per-sweep timing, published only when the caller injected a registry.
  // The instrumentation observes the clock, never a sampled value, so
  // enabling it cannot perturb the chain.
  obs::Counter* sweeps_total =
      ctx.metrics == nullptr ? nullptr
                             : ctx.metrics->counter("ltm_infer_sweeps_total");
  obs::Histogram* sweep_micros =
      ctx.metrics == nullptr
          ? nullptr
          : ctx.metrics->histogram("ltm_infer_sweep_micros");
  for (int iter = 0; iter < opts.iterations; ++iter) {
    LTM_RETURN_IF_ERROR(obs.Check());
    int flips = 0;
    {
      obs::ObsSpan span("gibbs_sweep");
      WallTimer sweep_timer;
      flips = sampler.RunSweep();
      if (sweeps_total != nullptr) {
        sweeps_total->Increment();
        sweep_micros->Record(
            static_cast<uint64_t>(sweep_timer.ElapsedSeconds() * 1e6));
      }
    }
    if (iter >= opts.burnin && (iter - opts.burnin) % opts.sample_gap == 0) {
      sampler.AccumulateSample();
    }
    obs.OnIteration(iter, flips / num_facts, &result);
    if (ctx.on_state) {
      state.probability.assign(sampler.truth().begin(), sampler.truth().end());
      obs.OnState(iter, state);
    }
    obs.Progress(static_cast<double>(iter + 1) / opts.iterations);
  }

  result.estimate = sampler.PosteriorMean();
  if (ctx.with_quality) {
    // Quality is read off the full claim graph (§5.3) so that negative
    // claims inform specificity even for LTMpos.
    result.quality = EstimateSourceQuality(
        graph, result.estimate.probability, opts.alpha0, opts.alpha1);
  }
  obs.Finish(&result, opts.iterations, /*converged=*/true);
  return result;
}

TruthEstimate LatentTruthModel::RunWithQuality(const ClaimGraph& graph,
                                               SourceQuality* quality) const {
  RunContext ctx;
  ctx.with_quality = quality != nullptr;
  FactTable unused;
  Result<TruthResult> result = Run(ctx, unused, graph);
  if (!result.ok()) {
    LTM_LOG(Warning) << name() << "::RunWithQuality failed ("
                     << result.status().ToString()
                     << "); scoring every fact at the 0.5 prior";
    TruthEstimate prior;
    prior.probability.assign(graph.NumFacts(), 0.5);
    return prior;
  }
  if (quality != nullptr) {
    *quality = std::move(*result->quality);
  }
  return std::move(*result).estimate;
}

namespace {

/// Shared LTM/LTMpos factory: seeds the ablation flag, applies spec
/// options (which may still override it explicitly), validates.
Result<std::unique_ptr<TruthMethod>> MakeLtm(const MethodOptions& opts,
                                             LtmOptions base,
                                             bool positive_claims_only) {
  base.positive_claims_only = positive_claims_only;
  LTM_ASSIGN_OR_RETURN(const LtmOptions options, LtmOptionsFromSpec(opts, base));
  return std::unique_ptr<TruthMethod>(new LatentTruthModel(options));
}

}  // namespace

LTM_REGISTER_TRUTH_METHOD(
    "LTM", {"latenttruthmodel"},
    [](const MethodOptions& opts, const LtmOptions& base) {
      return MakeLtm(opts, base, /*positive_claims_only=*/false);
    });

LTM_REGISTER_TRUTH_METHOD(
    "LTMpos", {},
    [](const MethodOptions& opts, const LtmOptions& base) {
      return MakeLtm(opts, base, /*positive_claims_only=*/true);
    });

}  // namespace ltm
