#include "store/segment.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/block_cache.h"
#include "store/block_format.h"
#include "store/truth_store.h"
#include "test_util.h"

namespace ltm {
namespace store {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Rows over `num_entities` shared-prefix entities x `attrs_per` attributes,
/// already in SegmentRowOrder (entity, attribute, seq).
std::vector<SegmentRow> MakeRows(size_t num_entities, size_t attrs_per,
                                 uint64_t first_seq = 1) {
  std::vector<SegmentRow> rows;
  uint64_t seq = first_seq;
  for (size_t e = 0; e < num_entities; ++e) {
    char entity[32];
    std::snprintf(entity, sizeof(entity), "movie-%05zu", e);
    for (size_t a = 0; a < attrs_per; ++a) {
      SegmentRow row;
      row.entity = entity;
      row.attribute = "attr-" + std::to_string(a);
      row.source = "source-" + std::to_string((e + a) % 3);
      row.seq = seq++;
      row.observation = 1;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

class BlockSegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/block_segment_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(BlockSegmentTest, BlockBuilderRoundTripsAndPrefixCompresses) {
  const std::vector<SegmentRow> rows = MakeRows(40, 2);
  BlockBuilder builder(/*restart_interval=*/8);
  size_t raw_bytes = 0;
  for (const SegmentRow& row : rows) {
    builder.Add(row);
    raw_bytes += row.entity.size() + row.attribute.size() + row.source.size();
  }
  const std::string block = builder.Finish();

  // All 40 entities share the "movie-000" prefix; the restart encoding
  // must beat storing every key in full.
  EXPECT_LT(block.size(), raw_bytes);

  auto decoded = DecodeBlockRows(block, "test-block");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, rows);

  // Cursor iteration sees the same rows one at a time.
  auto cursor = BlockCursor::Parse(block, "test-block");
  ASSERT_TRUE(cursor.ok());
  size_t i = 0;
  SegmentRow row;
  while (true) {
    auto more = cursor->Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_LT(i, rows.size());
    EXPECT_EQ(row, rows[i]);
    ++i;
  }
  EXPECT_EQ(i, rows.size());
}

TEST_F(BlockSegmentTest, WriteThenParsePreservesRowsAndZoneStats) {
  const std::vector<SegmentRow> rows = MakeRows(64, 3, /*first_seq=*/100);
  BlockSegmentWriterOptions options;
  options.block_size_bytes = 512;  // force a multi-block file
  const std::string path = Path("seg.blk");
  auto info = WriteBlockSegment(path, rows, options);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  EXPECT_EQ(info->num_rows, rows.size());
  EXPECT_EQ(info->num_facts, 64u * 3u);
  EXPECT_EQ(info->num_sources, 3u);
  EXPECT_EQ(info->num_positive, rows.size());
  EXPECT_EQ(info->min_entity, "movie-00000");
  EXPECT_EQ(info->max_entity, "movie-00063");
  EXPECT_EQ(info->min_seq, 100u);
  EXPECT_EQ(info->max_seq, 100u + rows.size() - 1);
  EXPECT_GT(info->num_blocks, 1u);
  EXPECT_EQ(info->file_bytes, fs::file_size(path));

  auto parsed = ParseBlockSegmentFromBytes(ReadFile(path), "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows, rows);
  EXPECT_EQ(parsed->footer.num_rows, rows.size());
  EXPECT_EQ(parsed->footer.num_blocks, info->num_blocks);
  EXPECT_EQ(parsed->blocks.size(), info->num_blocks);
  EXPECT_EQ(parsed->footer.bloom_bits_per_key, options.bloom_bits_per_key);

  // Index key ranges tile the row space in order.
  EXPECT_EQ(parsed->blocks.front().first_entity, "movie-00000");
  EXPECT_EQ(parsed->blocks.back().last_entity, "movie-00063");
}

TEST_F(BlockSegmentTest, ReaderSelectsOnlyOverlappingBlocks) {
  const std::vector<SegmentRow> rows = MakeRows(64, 3);
  BlockSegmentWriterOptions options;
  options.block_size_bytes = 512;
  const std::string path = Path("seg.blk");
  auto info = WriteBlockSegment(path, rows, options);
  ASSERT_TRUE(info.ok());
  ASSERT_GT(info->num_blocks, 2u);

  auto reader = BlockSegmentReader::Open(path, /*cache_id=*/7);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->cache_id(), 7u);

  // Unbounded read returns every row (in key order here — the input was
  // already key-ordered) and touches every block.
  BlockSegmentReader::ReadStats stats;
  std::vector<SegmentRow> out;
  ASSERT_TRUE((*reader)
                  ->ReadRowsInRange(nullptr, nullptr, nullptr, &stats, &out)
                  .ok());
  EXPECT_EQ(out, rows);
  EXPECT_EQ(stats.blocks_read, info->num_blocks);
  EXPECT_EQ(stats.blocks_from_cache, 0u);
  EXPECT_GT(stats.bytes_read, 0u);

  // A single-entity read is index-selected down to one block.
  const std::string key = "movie-00031";
  stats = BlockSegmentReader::ReadStats();
  out.clear();
  ASSERT_TRUE(
      (*reader)->ReadRowsInRange(&key, &key, nullptr, &stats, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  for (const SegmentRow& row : out) EXPECT_EQ(row.entity, key);
  EXPECT_EQ(stats.blocks_read, 1u);

  // A disjoint range reads nothing.
  const std::string lo = "zzz", hi = "zzzz";
  stats = BlockSegmentReader::ReadStats();
  out.clear();
  ASSERT_TRUE(
      (*reader)->ReadRowsInRange(&lo, &hi, nullptr, &stats, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.blocks_read, 0u);
}

TEST_F(BlockSegmentTest, BlockCacheServesRepeatReadsWithoutDiskBytes) {
  const std::vector<SegmentRow> rows = MakeRows(64, 3);
  BlockSegmentWriterOptions options;
  options.block_size_bytes = 512;
  const std::string path = Path("seg.blk");
  ASSERT_TRUE(WriteBlockSegment(path, rows, options).ok());
  auto reader = BlockSegmentReader::Open(path, /*cache_id=*/1);
  ASSERT_TRUE(reader.ok());

  BlockCache cache(1 << 20);
  BlockSegmentReader::ReadStats cold;
  std::vector<SegmentRow> out;
  ASSERT_TRUE((*reader)
                  ->ReadRowsInRange(nullptr, nullptr, &cache, &cold, &out)
                  .ok());
  EXPECT_EQ(cold.blocks_from_cache, 0u);
  EXPECT_GT(cold.bytes_read, 0u);

  BlockSegmentReader::ReadStats warm;
  std::vector<SegmentRow> again;
  ASSERT_TRUE((*reader)
                  ->ReadRowsInRange(nullptr, nullptr, &cache, &warm, &again)
                  .ok());
  EXPECT_EQ(again, out);
  EXPECT_EQ(warm.blocks_read, cold.blocks_read);
  EXPECT_EQ(warm.blocks_from_cache, warm.blocks_read);
  EXPECT_EQ(warm.bytes_read, 0u);
}

TEST_F(BlockSegmentTest, BloomHasNoFalseNegativesAndFewFalsePositives) {
  const std::vector<SegmentRow> rows = MakeRows(128, 2);
  const std::string path = Path("seg.blk");
  ASSERT_TRUE(WriteBlockSegment(path, rows, BlockSegmentWriterOptions()).ok());
  auto reader = BlockSegmentReader::Open(path, 1);
  ASSERT_TRUE(reader.ok());

  for (const SegmentRow& row : rows) {
    EXPECT_TRUE((*reader)->MayContainEntity(row.entity));
    EXPECT_TRUE((*reader)->MayContainFact(row.entity, row.attribute));
  }
  // At 10 bits/key the false-positive rate is ~1%; 1000 absent probes
  // must come back overwhelmingly negative.
  size_t positives = 0;
  for (int p = 0; p < 1000; ++p) {
    if ((*reader)->MayContainFact("absent-" + std::to_string(p), "x")) {
      ++positives;
    }
  }
  EXPECT_LT(positives, 100u);

  // bloom_bits_per_key = 0 disables the filter: probes degrade to
  // "maybe" (true), never to a false negative.
  BlockSegmentWriterOptions no_bloom;
  no_bloom.bloom_bits_per_key = 0;
  const std::string path2 = Path("no_bloom.blk");
  ASSERT_TRUE(WriteBlockSegment(path2, rows, no_bloom).ok());
  auto plain = BlockSegmentReader::Open(path2, 2);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->footer().bloom_size, 0u);
  EXPECT_TRUE((*plain)->MayContainEntity("definitely-absent"));
  EXPECT_TRUE((*plain)->MayContainFact("definitely-absent", "x"));
}

TEST_F(BlockSegmentTest, CorruptBytesAreRejectedWithAStatus) {
  const std::vector<SegmentRow> rows = MakeRows(64, 3);
  BlockSegmentWriterOptions options;
  options.block_size_bytes = 512;
  const std::string path = Path("seg.blk");
  ASSERT_TRUE(WriteBlockSegment(path, rows, options).ok());
  const std::string good = ReadFile(path);

  EXPECT_FALSE(ParseBlockSegmentFromBytes("", "t").ok());
  EXPECT_FALSE(ParseBlockSegmentFromBytes("short", "t").ok());

  // Torn footer — the tail a mid-write crash leaves.
  EXPECT_FALSE(
      ParseBlockSegmentFromBytes(good.substr(0, good.size() - 13), "t").ok());

  // Bad magic (last footer bytes).
  std::string bad_magic = good;
  bad_magic[bad_magic.size() - 1] ^= 0x5A;
  EXPECT_FALSE(ParseBlockSegmentFromBytes(bad_magic, "t").ok());

  // A flipped data byte fails the per-block checksum.
  std::string bad_block = good;
  bad_block[0] ^= 0x01;
  EXPECT_FALSE(ParseBlockSegmentFromBytes(bad_block, "t").ok());

  // Footer counts/offsets blasted to 0xFF must fail fast (allocation
  // bomb), not reserve terabytes.
  std::string bomb = good;
  for (size_t i = bomb.size() - kSegmentFooterSize; i < bomb.size() - 4; ++i) {
    bomb[i] = '\xff';
  }
  EXPECT_FALSE(ParseBlockSegmentFromBytes(bomb, "t").ok());

  // The random-access reader catches a corrupt data block on the read
  // path: Open verifies only footer/index/bloom, so it succeeds, and the
  // block read fails its index checksum.
  const std::string bad_path = Path("bad_block.blk");
  WriteFile(bad_path, bad_block);
  auto reader = BlockSegmentReader::Open(bad_path, 1);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  BlockSegmentReader::ReadStats stats;
  auto block = (*reader)->ReadBlock(0, nullptr, &stats);
  EXPECT_FALSE(block.ok());
}

// The read-path acceptance pin: with >= 8 segments on disk, a point fact
// lookup resolves via zone stats + bloom + block index and decodes
// exactly ONE data block.
TEST_F(BlockSegmentTest, PointLookupOnEightSegmentStoreReadsOneBlock) {
  TruthStoreOptions options;
  options.block_size_bytes = 512;  // several blocks per segment
  auto store = TruthStore::Open(Path("store"), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // 8 flushed segments over disjoint entity ranges, as leveled
  // compaction would converge to.
  const size_t kSegments = 8, kEntities = 32;
  for (size_t seg = 0; seg < kSegments; ++seg) {
    for (size_t e = 0; e < kEntities; ++e) {
      char entity[32];
      std::snprintf(entity, sizeof(entity), "movie-%05zu",
                    seg * kEntities + e);
      for (int a = 0; a < 2; ++a) {
        ASSERT_TRUE((*store)
                        ->Append(WalRecord{entity,
                                           "attr-" + std::to_string(a),
                                           "source-" + std::to_string(a), 1})
                        .ok());
      }
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_GE((*store)->Stats().num_segments, 8u);
  for (const SegmentInfo& seg : (*store)->segments()) {
    ASSERT_GT(seg.num_blocks, 1u);  // one block per segment would be vacuous
  }

  const auto pin = (*store)->PinEpoch();
  const std::string key = "movie-00100";  // lives in segment 4 of 8
  RangeScanStats rs;
  auto slice = (*store)->MaterializeFromPin(*pin, &key, &key, &rs);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(slice->raw.NumRows(), 2u);
  EXPECT_EQ(slice->raw.NumEntities(), 1u);

  EXPECT_EQ(rs.blocks_read, 1u);  // the O(1-block) guarantee
  EXPECT_EQ(rs.segments_scanned, 1u);
  EXPECT_EQ(rs.segments_skipped + rs.segments_skipped_bloom, kSegments - 1);
  EXPECT_GT(rs.bytes_read, 0u);

  // The same lookup again is served from the block cache: one block
  // decoded, zero disk bytes.
  RangeScanStats warm;
  auto again = (*store)->MaterializeFromPin(*pin, &key, &key, &warm);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(warm.blocks_read, 1u);
  EXPECT_EQ(warm.block_cache_hits, 1u);
  EXPECT_EQ(warm.bytes_read, 0u);
}

TEST_F(BlockSegmentTest, PinnedFactMayExistAnswersFromBloomsAlone) {
  auto store = TruthStore::Open(Path("store"));
  ASSERT_TRUE(store.ok());
  for (const char* e : {"apple", "banana"}) {
    ASSERT_TRUE((*store)->Append(WalRecord{e, "color", "s1", 1}).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  for (const char* e : {"cherry", "damson"}) {
    ASSERT_TRUE((*store)->Append(WalRecord{e, "color", "s1", 1}).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  const auto pin = (*store)->PinEpoch();
  auto present = (*store)->PinnedFactMayExist(*pin, "cherry", "color");
  ASSERT_TRUE(present.ok());
  EXPECT_TRUE(*present);

  const uint64_t skips_before = (*store)->Stats().bloom_point_skips;
  auto absent = (*store)->PinnedFactMayExist(*pin, "cherry", "weight");
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);
  EXPECT_GT((*store)->Stats().bloom_point_skips, skips_before);

  // Memtable rows are visible to the probe before any flush.
  ASSERT_TRUE((*store)->Append(WalRecord{"elder", "color", "s1", 1}).ok());
  const auto pin2 = (*store)->PinEpoch();
  auto memtable_hit = (*store)->PinnedFactMayExist(*pin2, "elder", "color");
  ASSERT_TRUE(memtable_hit.ok());
  EXPECT_TRUE(*memtable_hit);
}

}  // namespace
}  // namespace store
}  // namespace ltm
