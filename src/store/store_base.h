#ifndef LTM_STORE_STORE_BASE_H_
#define LTM_STORE_STORE_BASE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "store/block_cache.h"
#include "store/posterior_cache.h"
#include "store/wal.h"

namespace ltm {
namespace store {

class EpochPin;      // truth_store.h
class CompositePin;  // partitioned_store.h

/// Read-path counters reported per materialization call.
struct RangeScanStats {
  size_t segments_scanned = 0;
  /// Segments excluded by manifest zone stats (entity range).
  size_t segments_skipped = 0;
  /// Segments excluded by a negative bloom probe (point reads only).
  size_t segments_skipped_bloom = 0;
  /// Data blocks decoded (cache hits + disk reads).
  uint64_t blocks_read = 0;
  /// Of those, served from the block cache.
  uint64_t block_cache_hits = 0;
  /// Bytes actually read from disk for data blocks.
  uint64_t bytes_read = 0;
};

/// Cumulative compaction work counters (write-amplification accounting).
struct CompactionStats {
  uint64_t compactions = 0;       ///< merge passes that committed
  uint64_t trivial_moves = 0;     ///< segments relinked down a level, no IO
  uint64_t input_segments = 0;
  uint64_t output_segments = 0;
  uint64_t bytes_read = 0;        ///< sum of input segment file bytes
  uint64_t bytes_written = 0;     ///< sum of output segment file bytes
  uint64_t rows_dropped = 0;      ///< duplicate (entity, attr, source) rows
};

/// Point-in-time store counters. For a PartitionedTruthStore this is the
/// aggregate over every child partition (counts summed, max_level taken
/// as the max, epoch/generation the composite values).
struct TruthStoreStats {
  uint64_t epoch = 0;
  uint64_t generation = 0;
  size_t num_segments = 0;
  uint64_t segment_rows = 0;
  size_t memtable_rows = 0;
  uint64_t wal_records_replayed = 0;
  bool recovered_torn_tail = false;
  /// Live pin handles (MVCC read snapshots) outstanding right now.
  size_t live_pins = 0;
  /// Segments compacted away but kept on disk because a live pin still
  /// references them; reclaimed when the last referencing pin drops.
  size_t deferred_segments = 0;

  /// Deepest populated level and the L0 (overlapping) segment count.
  uint32_t max_level = 0;
  size_t l0_segments = 0;
  uint64_t next_row_seq = 0;
  /// Edit records appended since the last manifest snapshot fold.
  uint64_t manifest_edits_since_snapshot = 0;
  /// Point probes answered "fact cannot exist" purely from blooms,
  /// reading zero data blocks (cumulative).
  uint64_t bloom_point_skips = 0;
  BlockCacheStats block_cache;
  CompactionStats compaction;
};

/// An abstract MVCC read snapshot handle: a TruthStore issues an
/// EpochPin, a PartitionedTruthStore a composite pin over every child.
/// Either way the handle freezes a consistent view of the store: reads
/// through it never race a compaction's file removals and are
/// bit-reproducible at the captured epoch. Must not outlive the store
/// that issued it; must only be passed back to that store.
class StorePin {
 public:
  virtual ~StorePin() = default;

  StorePin(const StorePin&) = delete;
  StorePin& operator=(const StorePin&) = delete;

  /// The (composite) store epoch this pin captured, for posterior-cache
  /// keying. For a partitioned store this is the sum over the pinned
  /// per-partition epochs — one scalar that changes whenever any
  /// partition's data does.
  virtual uint64_t epoch() const = 0;

  /// Manual RTTI: the concrete single-store pin, or null. TruthStore
  /// accepts only pins it issued; the accessor keeps that check a
  /// virtual call instead of a dynamic_cast.
  virtual const EpochPin* AsEpochPin() const { return nullptr; }
  /// Manual RTTI for the partitioned router's composite pin.
  virtual const CompositePin* AsCompositePin() const { return nullptr; }

 protected:
  StorePin() = default;
};

/// The polymorphic store surface the serving and streaming layers build
/// on: everything a ServeSession / StreamingPipeline needs, implemented
/// by the single-directory TruthStore and by the entity-range
/// PartitionedTruthStore router. Callers that need single-store-only
/// surface (segment listings, the concrete EpochPin API) keep holding a
/// TruthStore directly.
///
/// Implementations are thread-safe with the same contract as TruthStore:
/// appends, flushes, reads, and one background compaction per partition
/// may run concurrently.
class TruthStoreBase {
 public:
  virtual ~TruthStoreBase() = default;

  TruthStoreBase(const TruthStoreBase&) = delete;
  TruthStoreBase& operator=(const TruthStoreBase&) = delete;

  /// Appends one observation (WAL first, then the memtable). A
  /// partitioned store routes by entity and assigns the record a global
  /// ingest sequence number.
  virtual Status Append(const WalRecord& record) = 0;

  /// Appends every row of `raw` (in row order) and then Sync()s — one
  /// durable group commit per chunk.
  virtual Status AppendRaw(const RawDatabase& raw) = 0;

  /// AppendRaw over `chunk.raw` (convenience for callers that already
  /// materialized the chunk).
  Status AppendDataset(const Dataset& chunk) { return AppendRaw(chunk.raw); }

  /// Makes all buffered appends durable (WAL fsync, all partitions).
  virtual Status Sync() = 0;

  /// Flushes the memtable(s) into immutable L0 segments.
  virtual Status Flush() = 0;

  /// Major compaction (every partition).
  virtual Status Compact() = 0;

  /// One leveled compaction step; a partitioned store fans the step out
  /// across partitions and may rebalance (split/merge) afterwards.
  /// Returns true when any partition did work.
  virtual Result<bool> CompactOnce() = 0;

  /// Acquires an MVCC read snapshot (see StorePin). For a partitioned
  /// store the snapshot pins every partition at a consistent vector
  /// epoch under the routing table lock, so a cross-partition read is a
  /// single point-in-time view.
  virtual std::unique_ptr<StorePin> PinSnapshot(
      const std::string* min_entity = nullptr,
      const std::string* max_entity = nullptr) const = 0;

  /// Materializes from a pinned snapshot in global ingest order —
  /// bit-identical to what a sequential materialize at the pinned epoch
  /// would produce, regardless of partitioning. `pin` must have been
  /// issued by this store.
  virtual Result<Dataset> MaterializeSnapshot(
      const StorePin& pin, const std::string* min_entity = nullptr,
      const std::string* max_entity = nullptr,
      RangeScanStats* stats = nullptr) const = 0;

  /// Bloom-only point probe against a pinned snapshot: false means the
  /// fact definitely does not exist at the pin's epoch.
  virtual Result<bool> SnapshotFactMayExist(
      const StorePin& pin, const std::string& entity,
      const std::string& attribute) const = 0;

  /// Full rebuild in global ingest order. When `epoch_out` is non-null
  /// it receives the epoch the materialized data corresponds to.
  virtual Result<Dataset> Materialize(uint64_t* epoch_out = nullptr) const = 0;

  /// Rebuild restricted to entities in [min_entity, max_entity].
  virtual Result<Dataset> MaterializeEntityRange(
      const std::string& min_entity, const std::string& max_entity,
      RangeScanStats* stats = nullptr, uint64_t* epoch_out = nullptr) const = 0;

  /// In-memory data version: advances on every append and every manifest
  /// commit (summed over partitions, kept monotone across rebalances).
  virtual uint64_t epoch() const = 0;

  virtual TruthStoreStats Stats() const = 0;

  /// Number of entity-range partitions (1 for a plain TruthStore).
  virtual size_t num_partitions() const { return 1; }

  /// Per-partition epochs, in partition (entity-range) order — the
  /// vector the RefitScheduler debounces on. Size num_partitions().
  virtual std::vector<uint64_t> PartitionEpochs() const { return {epoch()}; }

  /// The posterior cache that serves `entity` — per-partition keying for
  /// a partitioned store, so one hot partition cannot evict the whole
  /// working set.
  virtual PosteriorCache& posterior_cache_for(std::string_view entity) = 0;

  /// Clears every partition's posterior cache (quality version bumps).
  virtual void ClearPosteriorCaches() = 0;

  /// Aggregated posterior-cache counters across partitions.
  virtual CacheStats PosteriorCacheStats() const = 0;

  /// Live pin handles outstanding (observability + tests).
  virtual size_t num_pinned_epochs() const = 0;

  /// The registry this store publishes into. Never null.
  virtual obs::MetricsRegistry* metrics() const = 0;

  virtual const std::string& dir() const = 0;

 protected:
  TruthStoreBase() = default;
};

}  // namespace store
}  // namespace ltm

#endif  // LTM_STORE_STORE_BASE_H_
