#ifndef LTM_TRUTH_OPTIONS_H_
#define LTM_TRUTH_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ltm {

class MethodOptions;  // truth/method_spec.h

/// A Beta(pos, neg) prior expressed as pseudo-counts, following the paper's
/// convention: `pos` is the prior count of positive observations (j = 1)
/// and `neg` of negative observations (j = 0). E.g. the false-positive-rate
/// prior alpha0 = (10, 1000) means 10 prior false positives vs. 1000 prior
/// true negatives, i.e. expected specificity ~0.99.
struct BetaPrior {
  double pos = 1.0;
  double neg = 1.0;

  double Sum() const { return pos + neg; }
  /// Prior mean of the positive-observation probability.
  double Mean() const { return pos / (pos + neg); }
};

/// Which implementation of the per-fact Gibbs update the samplers run.
/// Both evaluate the same collapsed conditional (paper Eq. 2); they
/// differ in how much floating-point work a sweep pays.
enum class LtmKernel {
  /// Resolve per sampler: `kReference` on the sequential chain (one
  /// shard), `kFused` on the multi-shard sampler. The default.
  kAuto = 0,
  /// Two LogConditional passes per fact, four std::log calls per packed
  /// adjacency entry — the original Algorithm 1 transcription whose
  /// posteriors are pinned bit-identical across releases.
  kReference,
  /// One pass per fact accumulating the flip log-odds directly, with all
  /// transcendentals served from memoized log(count + alpha) tables
  /// (truth/gibbs_kernel.h). Statistically equivalent to kReference —
  /// same RNG draw sequence, different floating-point rounding — and
  /// ~2x+ faster per sweep; validated against the exact oracle and the
  /// reference chain by tests/truth/ltm_kernel_test.cc.
  kFused,
};

/// Spec-string form: "auto", "reference", "fused" (case-insensitive).
const char* LtmKernelName(LtmKernel kernel);
Result<LtmKernel> ParseLtmKernel(const std::string& name);

/// Hyper-parameters and sampler controls for the Latent Truth Model.
/// Defaults follow the paper's movie-data configuration (§6.2).
struct LtmOptions {
  /// alpha0: prior on each source's false positive rate, phi0_s ~
  /// Beta(alpha0.pos, alpha0.neg). Must be strongly biased toward low FPR
  /// (high specificity), otherwise the model may flip all truths (§4.3.1).
  BetaPrior alpha0{100.0, 10000.0};

  /// alpha1: prior on each source's sensitivity, phi1_s ~
  /// Beta(alpha1.pos, alpha1.neg). Uniform-ish by default: false negatives
  /// are common in practice.
  BetaPrior alpha1{50.0, 50.0};

  /// beta: prior truth probability of each fact, theta_f ~ Beta(beta.pos,
  /// beta.neg).
  BetaPrior beta{10.0, 10.0};

  /// Total Gibbs sweeps, including burn-in.
  int iterations = 100;
  /// Sweeps discarded before collecting samples.
  int burnin = 20;
  /// Keep every `sample_gap`-th post-burn-in sweep (1 = keep all). The
  /// paper calls this thinning.
  int sample_gap = 4;

  /// Seed for the sampler's deterministic RNG.
  uint64_t seed = 42;

  /// Gibbs-sweep shard count, spec key `threads`. 1 (default) runs the
  /// sequential sampler, bit-identical to the original Algorithm 1
  /// implementation. N > 1 runs the sharded sampler: facts are
  /// partitioned into N contiguous shards, each driven by its own
  /// SplitStream RNG, with per-shard count matrices merged at sweep
  /// barriers — deterministic for a fixed (seed, threads) pair, but a
  /// different chain than threads=1. 0 means auto (one shard per
  /// hardware thread; reproducible only on machines with equal core
  /// counts).
  int threads = 1;

  /// Gibbs shard count, spec key `shards`, decoupled from `threads`:
  /// shards fixes the chain (shard boundaries + per-shard RNG streams)
  /// while threads only sets how many pool workers execute the shard
  /// sweeps. 0 (default) follows `threads` — the historical coupling,
  /// where every thread count was its own chain. A store partitioned N
  /// ways can pin shards=N so refit chains stay reproducible no matter
  /// what hardware runs them.
  int shards = 0;

  /// Gibbs update kernel, spec key `kernel` (`auto|reference|fused`).
  /// kAuto keeps the sequential chain on the bit-pinned reference kernel
  /// and runs the sharded sampler on the fused kernel.
  LtmKernel kernel = LtmKernel::kAuto;

  /// When true, negative claims are ignored (the LTMpos ablation of §6.2).
  bool positive_claims_only = false;

  /// Epoch-aware refit trigger for store-backed streaming (§5.4 online
  /// serving over a TruthStore), spec key `refit_epoch_delta`. The
  /// store's epoch advances on every append and every flush/compaction
  /// commit; a store-attached StreamingPipeline refits batch LTM once the
  /// store has advanced at least this many epochs past the last fit.
  /// 0 (default) disables the epoch trigger — only the chunk-count
  /// trigger (StreamingOptions::refit_every_chunks) applies.
  uint64_t refit_epoch_delta = 0;

  /// Decision threshold on the posterior truth probability (§5.2).
  double truth_threshold = 0.5;

  /// Validates ranges (positive priors, iterations > burnin, ...).
  Status Validate() const;

  /// Paper configuration for the book-author dataset: alpha0 = (10, 1000).
  static LtmOptions BookDataDefaults();
  /// Paper configuration for the movie-director dataset:
  /// alpha0 = (100, 10000).
  static LtmOptions MovieDataDefaults();

  /// The paper's prior-scaling rule (§6.2): the specificity prior counts
  /// "should be at the same scale as the number of facts to become
  /// effective". Returns defaults whose alpha0 strength is
  /// `strength_fraction * num_facts` with prior FPR mean `fpr_mean` —
  /// e.g. the paper's movie prior (100, 10000) is strength ~0.3 * 33526
  /// facts at mean ~0.01.
  static LtmOptions ScaledDefaults(size_t num_facts, double fpr_mean = 0.01,
                                   double strength_fraction = 0.3);
};

/// Applies spec-string options (truth/method_spec.h) on top of `base` and
/// validates the result. Accepted keys: iterations, burnin,
/// sample_gap|gap, seed, threads, shards, kernel,
/// threshold|truth_threshold, positive_only, and the
/// six prior pseudo-counts alpha0_pos, alpha0_neg, alpha1_pos, alpha1_neg,
/// beta_pos, beta_neg. Used by every LTM-family registry factory.
Result<LtmOptions> LtmOptionsFromSpec(const MethodOptions& spec_options,
                                      LtmOptions base);

}  // namespace ltm

#endif  // LTM_TRUTH_OPTIONS_H_
