#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "ext/streaming.h"
#include "serve/serve_options.h"
#include "serve/serve_session.h"
#include "store/truth_store.h"
#include "test_util.h"
#include "truth/ltm.h"
#include "truth/ltm_incremental.h"

namespace ltm {
namespace ext {
namespace {

namespace fs = std::filesystem;

class StreamingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/streaming_store_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    world_ = Dataset::FromRaw("world", testing::RandomRaw(17));
    // Split entities into a bootstrap history and two arriving chunks.
    std::vector<EntityId> first_half;
    for (EntityId e = 0; e < world_.raw.NumEntities() / 2; ++e) {
      first_half.push_back(e);
    }
    auto [arrivals, history] = world_.SplitByEntities(first_half);
    history_ = std::move(history);
    std::vector<EntityId> odd;
    for (EntityId e = 0; e < arrivals.raw.NumEntities(); e += 2) {
      odd.push_back(e);
    }
    auto [chunk_b, chunk_a] = arrivals.SplitByEntities(odd);
    chunk_a_ = std::move(chunk_a);
    chunk_b_ = std::move(chunk_b);
  }

  StreamingOptions Options() {
    StreamingOptions options;
    options.ltm = LtmOptions::ScaledDefaults(world_.facts.NumFacts());
    options.ltm.iterations = 40;
    options.ltm.burnin = 10;
    options.ltm.seed = 5;
    options.refit_every_chunks = 0;  // tests arm triggers explicitly
    return options;
  }

  std::string FactKey(const Dataset& ds, FactId f, std::string* entity,
                      std::string* attribute) {
    const Fact& fact = ds.facts.fact(f);
    *entity = std::string(ds.raw.entities().Get(fact.entity));
    *attribute = std::string(ds.raw.attributes().Get(fact.attribute));
    return *entity + "\t" + *attribute;
  }

  std::string dir_;
  Dataset world_;
  Dataset history_;
  Dataset chunk_a_;
  Dataset chunk_b_;
};

TEST_F(StreamingStoreTest, ObserveToStoreRequiresAnAttachedStore) {
  StreamingPipeline pipeline(Options());
  Status st = pipeline.ObserveToStore(chunk_a_);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The serving layer refuses a store-less pipeline the same way.
  EXPECT_EQ(
      serve::ServeSession::Create(&pipeline, serve::ServeOptions())
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(StreamingStoreTest, BootstrapObserveAndServeAgainstTheStore) {
  auto store = store::TruthStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendDataset(history_).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  StreamingPipeline pipeline(Options());
  ASSERT_TRUE(pipeline.BootstrapFromStore(store->get()).ok());
  ASSERT_TRUE(pipeline.ObserveToStore(chunk_a_).ok());

  // The store now durably holds history + chunk_a.
  auto ds = (*store)->Materialize();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->raw.NumRows(),
            history_.raw.NumRows() + chunk_a_.raw.NumRows());

  // A point read through the serving layer: the first read computes
  // from the entity's slice and caches; a repeat read at the same epoch
  // is a hit.
  auto session = serve::ServeSession::Create(&pipeline, serve::ServeOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::string entity, attribute;
  FactKey(chunk_a_, 0, &entity, &attribute);
  auto served = (*session)->Query({entity, attribute});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const uint64_t hits_before = (*store)->posterior_cache().hits();
  auto repeat = (*session)->Query({entity, attribute});
  ASSERT_TRUE(repeat.ok());
  EXPECT_GT((*store)->posterior_cache().hits(), hits_before);
  EXPECT_DOUBLE_EQ(*served, *repeat);

  // The chunk's entities are new, so the full-evidence posterior agrees
  // with the chunk estimate LTMinc produced.
  auto estimate = pipeline.Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*served, estimate->estimate.probability[0], 1e-9);

  // An entity nobody ever claimed scores at the beta prior mean.
  auto unknown = (*session)->Query({"no-such-entity", "no-such-attr"});
  ASSERT_TRUE(unknown.ok());
  EXPECT_DOUBLE_EQ(*unknown, Options().ltm.beta.Mean());
}

TEST_F(StreamingStoreTest, QueryRecomputesAfterNewEvidence) {
  auto store = store::TruthStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendDataset(history_).ok());

  StreamingPipeline pipeline(Options());
  ASSERT_TRUE(pipeline.BootstrapFromStore(store->get()).ok());
  auto session = serve::ServeSession::Create(&pipeline, serve::ServeOptions());
  ASSERT_TRUE(session.ok());

  std::string entity, attribute;
  FactKey(history_, 0, &entity, &attribute);
  auto first = (*session)->Query({entity, attribute});
  ASSERT_TRUE(first.ok());
  // Second read at the same epoch: served from cache.
  const uint64_t misses_before = (*store)->posterior_cache().misses();
  auto second = (*session)->Query({entity, attribute});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*store)->posterior_cache().misses(), misses_before);
  EXPECT_DOUBLE_EQ(*first, *second);

  // New evidence advances the store epoch; the stale entry must not be
  // served even though the key is cached.
  ASSERT_TRUE(pipeline.ObserveToStore(chunk_a_).ok());
  auto third = (*session)->Query({entity, attribute});
  ASSERT_TRUE(third.ok());
  EXPECT_GT((*store)->posterior_cache().misses(), misses_before);
}

TEST_F(StreamingStoreTest, QueryMatchesFullGraphClosedForm) {
  auto store = store::TruthStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendDataset(history_).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  StreamingPipeline pipeline(Options());
  ASSERT_TRUE(pipeline.BootstrapFromStore(store->get()).ok());
  auto session = serve::ServeSession::Create(&pipeline, serve::ServeOptions());
  ASSERT_TRUE(session.ok());

  // Reference: LTMinc over the full materialized graph with the
  // pipeline's learned quality. A served read rebuilds only the
  // entity's slice; per-fact Eq. 3 must agree to FP noise.
  auto full = (*store)->Materialize();
  ASSERT_TRUE(full.ok());
  LtmIncremental reference(pipeline.quality(), Options().ltm);
  TruthEstimate est = reference.Score(full->facts, full->graph);
  for (FactId f = 0; f < full->facts.NumFacts(); f += 7) {
    std::string entity, attribute;
    FactKey(*full, f, &entity, &attribute);
    auto served = (*session)->Query({entity, attribute});
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_NEAR(*served, est.probability[f], 1e-9) << "fact " << f;
  }
}

TEST_F(StreamingStoreTest, EpochDeltaTriggersRefit) {
  auto store = store::TruthStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendDataset(history_).ok());

  StreamingOptions options = Options();
  options.ltm.refit_epoch_delta = 1;  // any new evidence forces a refit
  StreamingPipeline eager(options);
  ASSERT_TRUE(eager.BootstrapFromStore(store->get()).ok());
  ASSERT_TRUE(eager.ObserveToStore(chunk_a_).ok());
  EXPECT_TRUE(eager.last_refit());

  // With the trigger disabled, the same ingest does not refit.
  std::filesystem::remove_all(dir_ + "_no_trigger");
  auto store2 = store::TruthStore::Open(dir_ + "_no_trigger");
  ASSERT_TRUE(store2.ok());
  ASSERT_TRUE((*store2)->AppendDataset(history_).ok());
  StreamingPipeline lazy(Options());
  ASSERT_TRUE(lazy.BootstrapFromStore(store2->get()).ok());
  ASSERT_TRUE(lazy.ObserveToStore(chunk_a_).ok());
  EXPECT_FALSE(lazy.last_refit());
}

// The epoch trigger covers durable evidence that bypassed this pipeline
// (a foreign writer appending straight to the store) — even when the
// chunk-count trigger also fires, which only refits the in-memory mirror.
TEST_F(StreamingStoreTest, EpochRefitCoversForeignDurableAppends) {
  auto store = store::TruthStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendDataset(history_).ok());

  StreamingOptions options = Options();
  options.refit_every_chunks = 1;     // chunk-count refit every observe
  options.ltm.refit_epoch_delta = 1;  // and the epoch trigger is armed
  StreamingPipeline pipeline(options);
  ASSERT_TRUE(pipeline.BootstrapFromStore(store->get()).ok());

  // Foreign writer: evidence reaches the store without the pipeline.
  ASSERT_TRUE((*store)->AppendDataset(chunk_b_).ok());
  ASSERT_TRUE(pipeline.ObserveToStore(chunk_a_).ok());
  EXPECT_TRUE(pipeline.last_refit());

  // The final fit must equal a batch fit over the store's full contents
  // (history + foreign chunk_b + chunk_a) — bit-identical, same seed.
  auto full = (*store)->Materialize();
  ASSERT_TRUE(full.ok());
  LatentTruthModel reference(options.ltm);
  RunContext ctx;
  ctx.with_quality = true;
  auto ref = reference.Run(ctx, full->facts, full->graph);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pipeline.quality().sensitivity, ref->quality->sensitivity);
  EXPECT_EQ(pipeline.quality().specificity, ref->quality->specificity);
}

// The restartable-service pin: a fresh process that reopens the store and
// bootstraps sees exactly the batch fit over everything ever ingested.
TEST_F(StreamingStoreTest, RestartResumesFromDurableState) {
  {
    auto store = store::TruthStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    StreamingPipeline pipeline(Options());
    ASSERT_TRUE((*store)->AppendDataset(history_).ok());
    ASSERT_TRUE(pipeline.BootstrapFromStore(store->get()).ok());
    ASSERT_TRUE(pipeline.ObserveToStore(chunk_a_).ok());
    ASSERT_TRUE(pipeline.ObserveToStore(chunk_b_).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }  // process "dies"

  auto reopened = store::TruthStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  StreamingPipeline resumed(Options());
  ASSERT_TRUE(resumed.BootstrapFromStore(reopened->get()).ok());

  // Reference: batch LTM on the store's materialized cumulative data.
  auto cumulative = (*reopened)->Materialize();
  ASSERT_TRUE(cumulative.ok());
  LtmOptions opts = Options().ltm;
  LatentTruthModel reference(opts);
  RunContext ctx;
  ctx.with_quality = true;
  auto ref = reference.Run(ctx, cumulative->facts, cumulative->graph);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(resumed.quality().sensitivity, ref->quality->sensitivity);
  EXPECT_EQ(resumed.quality().specificity, ref->quality->specificity);
}

}  // namespace
}  // namespace ext
}  // namespace ltm
