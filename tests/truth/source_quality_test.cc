#include "truth/source_quality.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "test_util.h"

namespace ltm {
namespace {

// With hard (0/1) truth probabilities and negligible priors, the expected
// counts must equal the deterministic confusion counts of paper Table 6.
TEST(SourceQualityTest, HardTruthReproducesPaperTable6Counts) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  // Truth per Table 4: facts 0..2 true, 3 false, 4 true (id order follows
  // Table 1 first-appearance: Radcliffe, Watson, Grint, Depp@HP, Depp@P4).
  std::vector<double> p_true{1.0, 1.0, 1.0, 0.0, 1.0};
  const BetaPrior tiny{1e-9, 1e-9};
  SourceQuality q = EstimateSourceQuality(ds.graph, p_true, tiny, tiny);

  SourceId imdb = *ds.raw.sources().Find("IMDB");
  SourceId netflix = *ds.raw.sources().Find("Netflix");
  SourceId bad = *ds.raw.sources().Find("BadSource.com");

  // expected_counts[s] = {n00, n01, n10, n11}.
  EXPECT_DOUBLE_EQ(q.expected_counts[imdb][3], 3.0);  // TP
  EXPECT_DOUBLE_EQ(q.expected_counts[imdb][1], 0.0);  // FP
  EXPECT_DOUBLE_EQ(q.expected_counts[imdb][2], 0.0);  // FN
  EXPECT_DOUBLE_EQ(q.expected_counts[imdb][0], 1.0);  // TN

  EXPECT_DOUBLE_EQ(q.expected_counts[netflix][3], 1.0);
  EXPECT_DOUBLE_EQ(q.expected_counts[netflix][2], 2.0);
  EXPECT_DOUBLE_EQ(q.expected_counts[netflix][0], 1.0);

  EXPECT_DOUBLE_EQ(q.expected_counts[bad][3], 2.0);
  EXPECT_DOUBLE_EQ(q.expected_counts[bad][1], 1.0);
  EXPECT_DOUBLE_EQ(q.expected_counts[bad][2], 1.0);
  EXPECT_DOUBLE_EQ(q.expected_counts[bad][0], 0.0);

  // Derived measures with negligible priors match Table 6.
  EXPECT_NEAR(q.sensitivity[imdb], 1.0, 1e-6);
  EXPECT_NEAR(q.specificity[imdb], 1.0, 1e-6);
  EXPECT_NEAR(q.sensitivity[netflix], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(q.specificity[netflix], 1.0, 1e-6);
  EXPECT_NEAR(q.sensitivity[bad], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(q.specificity[bad], 0.0, 1e-6);
  EXPECT_NEAR(q.precision[imdb], 1.0, 1e-6);
  EXPECT_NEAR(q.precision[bad], 2.0 / 3.0, 1e-6);
  // Accuracy with negligible priors is the plain (TP + TN) / total of
  // Table 6: IMDB 4/4, Netflix 2/4, BadSource 2/4.
  EXPECT_NEAR(q.accuracy[imdb], 1.0, 1e-6);
  EXPECT_NEAR(q.accuracy[netflix], 0.5, 1e-6);
  EXPECT_NEAR(q.accuracy[bad], 0.5, 1e-6);
}

TEST(SourceQualityTest, SoftTruthSplitsCounts) {
  // One positive claim with p(true) = 0.7 contributes 0.7 to TP and 0.3
  // to FP.
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 0, true}}, 1, 1);
  const BetaPrior tiny{1e-9, 1e-9};
  SourceQuality q =
      EstimateSourceQuality(claims, std::vector<double>{0.7}, tiny, tiny);
  EXPECT_NEAR(q.expected_counts[0][3], 0.7, 1e-12);
  EXPECT_NEAR(q.expected_counts[0][1], 0.3, 1e-12);
}

TEST(SourceQualityTest, PriorsDominateWithoutData) {
  ClaimGraph claims = ClaimGraph::FromClaims({}, 0, 2);
  const BetaPrior alpha0{10.0, 90.0};
  const BetaPrior alpha1{80.0, 20.0};
  SourceQuality q = EstimateSourceQuality(claims, {}, alpha0, alpha1);
  ASSERT_EQ(q.NumSources(), 2u);
  EXPECT_NEAR(q.sensitivity[0], 0.8, 1e-12);
  EXPECT_NEAR(q.specificity[0], 0.9, 1e-12);
  EXPECT_NEAR(q.FalsePositiveRate(0), 0.1, 1e-12);
  // Accuracy is prior-smoothed like the other measures: a claimless
  // source reports (a1.pos + a0.neg) / (a0.sum + a1.sum) = 170/200 —
  // the strength-weighted mean of prior sensitivity and specificity —
  // not the 0.0 the unsmoothed read-off used to emit.
  EXPECT_NEAR(q.accuracy[0], 0.85, 1e-12);
  EXPECT_NEAR(q.accuracy[1], 0.85, 1e-12);
}

// Regression for the claimless-source inconsistency: in one graph, a
// source with claims and one without must both get prior-consistent
// accuracy; the claimless one sits at its prior mean, strictly above 0.
TEST(SourceQualityTest, ClaimlessSourceAccuracyMatchesPriorMean) {
  // Source 0 claims, source 1 exists but never claims anything.
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 0, true}}, 1, 2);
  const BetaPrior alpha0{10.0, 1000.0};
  const BetaPrior alpha1{50.0, 50.0};
  SourceQuality q = EstimateSourceQuality(
      claims, std::vector<double>{1.0}, alpha0, alpha1);
  const double prior_mean =
      (alpha1.pos + alpha0.neg) / (alpha0.Sum() + alpha1.Sum());
  EXPECT_NEAR(q.accuracy[1], prior_mean, 1e-12);
  EXPECT_GT(q.accuracy[1], 0.0);
  // The claiming source's one true positive nudges it above the prior.
  EXPECT_GT(q.accuracy[0], prior_mean);
  EXPECT_LE(q.accuracy[0], 1.0);
}

TEST(SourceQualityTest, QualitiesStayInUnitInterval) {
  Dataset ds = Dataset::FromRaw("rand", testing::RandomRaw(31));
  std::vector<double> p(ds.facts.NumFacts(), 0.37);
  SourceQuality q = EstimateSourceQuality(ds.graph, p, BetaPrior{10, 1000},
                                          BetaPrior{50, 50});
  for (size_t s = 0; s < q.NumSources(); ++s) {
    EXPECT_GE(q.sensitivity[s], 0.0);
    EXPECT_LE(q.sensitivity[s], 1.0);
    EXPECT_GE(q.specificity[s], 0.0);
    EXPECT_LE(q.specificity[s], 1.0);
    EXPECT_GE(q.precision[s], 0.0);
    EXPECT_LE(q.precision[s], 1.0);
  }
}

}  // namespace
}  // namespace ltm
