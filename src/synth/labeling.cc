#include "synth/labeling.h"

#include <numeric>

#include "common/rng.h"

namespace ltm {
namespace synth {

std::vector<EntityId> SampleEntities(const Dataset& dataset,
                                     size_t num_entities, uint64_t seed) {
  std::vector<EntityId> all(dataset.raw.NumEntities());
  std::iota(all.begin(), all.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&all);
  if (all.size() > num_entities) all.resize(num_entities);
  return all;
}

TruthLabels LabelsForEntities(const Dataset& dataset,
                              const std::vector<EntityId>& entities) {
  TruthLabels out(dataset.facts.NumFacts());
  for (EntityId e : entities) {
    for (FactId f : dataset.facts.FactsOfEntity(e)) {
      auto label = dataset.labels.Get(f);
      if (label.has_value()) out.Set(f, *label);
    }
  }
  return out;
}

}  // namespace synth
}  // namespace ltm
