#include "truth/hub_authority.h"

#include <algorithm>
#include <cmath>

namespace ltm {

TruthEstimate HubAuthority::Run(const FactTable& facts,
                                const ClaimTable& claims) const {
  (void)facts;
  const size_t num_facts = claims.NumFacts();
  const size_t num_sources = claims.NumSources();

  std::vector<double> hub(num_sources, 1.0);
  std::vector<double> auth(num_facts, 1.0);

  auto l2_normalize = [](std::vector<double>* v) {
    double norm = 0.0;
    for (double x : *v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm <= 0.0) return;
    for (double& x : *v) x /= norm;
  };

  for (int iter = 0; iter < iterations_; ++iter) {
    std::fill(auth.begin(), auth.end(), 0.0);
    for (const Claim& c : claims.claims()) {
      if (c.observation) auth[c.fact] += hub[c.source];
    }
    l2_normalize(&auth);
    std::fill(hub.begin(), hub.end(), 0.0);
    for (const Claim& c : claims.claims()) {
      if (c.observation) hub[c.source] += auth[c.fact];
    }
    l2_normalize(&hub);
  }

  double max_auth = 0.0;
  for (double a : auth) max_auth = std::max(max_auth, a);
  TruthEstimate est;
  est.probability.resize(num_facts, 0.0);
  if (max_auth > 0.0) {
    for (FactId f = 0; f < num_facts; ++f) {
      est.probability[f] = auth[f] / max_auth;
    }
  }
  return est;
}

}  // namespace ltm
