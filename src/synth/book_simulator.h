#ifndef LTM_SYNTH_BOOK_SIMULATOR_H_
#define LTM_SYNTH_BOOK_SIMULATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace ltm {
namespace synth {

/// Configuration for the book-author dataset substitute. Defaults match
/// the shape of the paper's abebooks.com crawl (§6.1.1): 1263 books, 879
/// seller sources, ~2420 book-author facts and ~48k claims, with the error
/// structure the paper describes — many sellers list only the first
/// author (false negatives are common), false positives are rare, and a
/// small fraction of sellers are sloppy.
struct BookSimOptions {
  size_t num_books = 1263;
  size_t num_sources = 879;
  /// Size of the global author pool wrong authors are drawn from.
  size_t author_pool = 4000;
  /// Authors per book = 1 + Poisson(extra_author_rate).
  double extra_author_rate = 1.2;
  /// Fraction of sellers that list only the first author.
  double first_author_only_fraction = 0.35;
  /// Zipf exponent for seller coverage (a few big sellers cover most
  /// books; the long tail covers a handful each).
  double coverage_zipf_exponent = 1.3;
  /// Mean number of books covered by a source, before the Zipf skew.
  double mean_coverage = 0.04;
  /// Beta(pseudo-counts) for per-seller sensitivity.
  double sensitivity_alpha = 6.0;
  double sensitivity_beta = 2.0;
  /// Per-covered-book probability of emitting one wrong author, for
  /// ordinary sellers and for the sloppy fraction.
  double fp_rate_good = 0.003;
  double fp_rate_sloppy = 0.12;
  double sloppy_fraction = 0.05;
  /// Wrong authors are drawn from a small per-book confusion pool (e.g.
  /// the editor, a co-author of the series, a mis-segmented name), so
  /// independent sloppy sellers can repeat the *same* mistake — the error
  /// correlation that makes naive voting fail.
  size_t confusion_pool = 3;
  uint64_t seed = 1263;
};

/// Generates the dataset with *all* facts labeled with ground truth (the
/// benchmark harness samples 100 entities to mimic the paper's labeling
/// budget — see synth/labeling.h).
Dataset GenerateBookDataset(const BookSimOptions& options);

}  // namespace synth
}  // namespace ltm

#endif  // LTM_SYNTH_BOOK_SIMULATOR_H_
