#include "truth/voting.h"

#include <memory>

#include "truth/registry.h"

namespace ltm {

Result<TruthResult> Voting::Run(const RunContext& ctx, const FactTable& facts,
                                const ClaimTable& claims) const {
  (void)facts;
  RunObserver obs(ctx, name());
  LTM_RETURN_IF_ERROR(obs.Check());
  TruthResult result;
  TruthEstimate& est = result.estimate;
  est.probability.resize(claims.NumFacts(), 0.0);
  for (FactId f = 0; f < claims.NumFacts(); ++f) {
    auto fact_claims = claims.ClaimsOfFact(f);
    if (fact_claims.empty()) continue;
    size_t pos = 0;
    for (const Claim& c : fact_claims) {
      if (c.observation) ++pos;
    }
    est.probability[f] =
        static_cast<double>(pos) / static_cast<double>(fact_claims.size());
  }
  obs.Finish(&result, /*iterations=*/0, /*converged=*/true);
  return result;
}

LTM_REGISTER_TRUTH_METHOD(
    "Voting", {},
    [](const MethodOptions&, const LtmOptions&)
        -> Result<std::unique_ptr<TruthMethod>> {
      return std::unique_ptr<TruthMethod>(new Voting());
    });

}  // namespace ltm
