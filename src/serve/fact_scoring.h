#ifndef LTM_SERVE_FACT_SCORING_H_
#define LTM_SERVE_FACT_SCORING_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/interner.h"
#include "truth/options.h"
#include "truth/source_quality.h"
#include "truth/truth_method.h"

namespace ltm {
namespace serve {

/// Frozen source quality keyed by source *name* — the serving-side view
/// of a batch fit. Store slices intern their own source ids in slice
/// order, so serving must remap the learned per-id quality by name;
/// sources the fit never saw score at the prior means (matching
/// LtmIncremental's unseen-source rule).
struct QualityLookup {
  /// name -> (sensitivity, specificity)
  std::unordered_map<std::string, std::pair<double, double>> by_name;
  double prior_sensitivity = 0.0;   ///< alpha1 prior mean
  double prior_specificity = 0.0;   ///< 1 - alpha0 prior mean
  double no_claim_prior = 0.5;      ///< beta prior mean (fact with no claims)
};

/// Builds the name-keyed lookup from a batch read-off. `quality` is
/// indexed by `sources` ids (the fitted interner); ids beyond the
/// read-off's range are ignored (they arrived after the fit and fall
/// back to the priors at scoring time).
QualityLookup BuildQualityLookup(const SourceQuality& quality,
                                 const StringInterner& sources,
                                 const LtmOptions& options);

/// Scores every fact of `slice` in closed form (Eq. 3) under `lookup`,
/// remapping quality onto the slice's own source ids by name. Returns
/// posteriors aligned with slice.facts. Deterministic: no sampling, and
/// the per-fact claim order follows the slice's packed adjacency.
Result<std::vector<double>> ScoreSlice(const Dataset& slice,
                                       const QualityLookup& lookup,
                                       const LtmOptions& options,
                                       const RunContext& ctx);

}  // namespace serve
}  // namespace ltm

#endif  // LTM_SERVE_FACT_SCORING_H_
