#ifndef LTM_TRUTH_POOLED_INVESTMENT_H_
#define LTM_TRUTH_POOLED_INVESTMENT_H_

#include "truth/truth_method.h"

namespace ltm {

/// PooledInvestment baseline (Pasternack & Roth; paper §6.2). Like
/// Investment, but beliefs are linearly pooled within each mutual-exclusion
/// set (here: the facts of one entity):
///   H(f) = sum_{s asserts f} T(s) / |claims(s)|
///   B(f) = H(f) * G(H(f)) / sum_{f' in entity(f)} G(H(f'))
/// so the beliefs of an entity's facts compete for a fixed budget. With
/// multi-valued attributes (several simultaneously-true facts per entity)
/// each fact receives only a fraction of the pool — the structural reason
/// the paper finds PooledInvestment over-conservative at threshold 0.5.
class PooledInvestment : public TruthMethod {
 public:
  explicit PooledInvestment(int iterations = 10, double exponent = 1.2)
      : iterations_(iterations), exponent_(exponent) {}

  std::string name() const override { return "PooledInvestment"; }

  Result<TruthResult> Run(const RunContext& ctx, const FactTable& facts,
                          const ClaimGraph& graph) const override;

 private:
  int iterations_;
  double exponent_;
};

}  // namespace ltm

#endif  // LTM_TRUTH_POOLED_INVESTMENT_H_
