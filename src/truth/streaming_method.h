#ifndef LTM_TRUTH_STREAMING_METHOD_H_
#define LTM_TRUTH_STREAMING_METHOD_H_

#include <vector>

#include "data/dataset.h"
#include "truth/options.h"
#include "truth/truth_method.h"

namespace ltm {

/// Per-source quality priors folded with the evidence accumulated so far:
/// alpha'_{i,j} = alpha_{i,j} + E[n_{s,i,j}] (paper §5.4). Feed these back
/// as per-source priors when periodically re-fitting LTM batch-style.
/// Entry s holds {alpha0', alpha1'} for source s.
struct UpdatedPriors {
  std::vector<BetaPrior> alpha0;
  std::vector<BetaPrior> alpha1;
};

/// Capability interface for methods that support the paper's incremental /
/// streaming protocol (§5.4): data arrives in chunks, each chunk is scored
/// online, and the per-source evidence is accumulated so a periodic batch
/// refit can start from informed priors. Implemented by LtmIncremental
/// (closed-form Eq. 3 scoring under frozen source quality) and by
/// ext::StreamingPipeline (LTMinc serving plus periodic batch refits).
///
/// Chunks must share a source vocabulary (same SourceId space, e.g.
/// produced by Dataset splits or a shared interner); entities and facts
/// may be entirely new in each chunk. The inherited batch
/// Run(ctx, facts, claims) scores a one-off table under the current state
/// without ingesting it.
class StreamingTruthMethod : public TruthMethod {
 public:
  /// Ingests one chunk: scores it under the current state, accumulates its
  /// evidence, and (implementation-dependent) refits. The chunk's estimate
  /// is available from Estimate() until the next Observe call.
  virtual Status Observe(const Dataset& chunk,
                         const RunContext& ctx = RunContext()) = 0;

  /// Result for the most recently observed chunk. FailedPrecondition when
  /// nothing has been observed yet.
  virtual Result<TruthResult> Estimate(
      const RunContext& ctx = RunContext()) const = 0;

  /// Priors folded with all evidence accumulated so far (training read-off
  /// plus every observed chunk).
  virtual UpdatedPriors AccumulatedPriors() const = 0;
};

}  // namespace ltm

#endif  // LTM_TRUTH_STREAMING_METHOD_H_
