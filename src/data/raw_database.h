#ifndef LTM_DATA_RAW_DATABASE_H_
#define LTM_DATA_RAW_DATABASE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "data/interner.h"
#include "data/types.h"

namespace ltm {

/// One input triple (paper Definition 1): source `source` asserted that
/// entity `entity` has attribute value `attribute`.
struct RawRow {
  EntityId entity;
  AttributeId attribute;
  SourceId source;

  bool operator==(const RawRow&) const = default;
};

struct RawRowHash {
  size_t operator()(const RawRow& r) const {
    uint64_t h = r.entity;
    h = h * 0x9e3779b97f4a7c15ULL + r.attribute;
    h = h * 0x9e3779b97f4a7c15ULL + r.source;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// The raw input database DB = {row_1, ..., row_N} of unique
/// (entity, attribute, source) triples, with dictionary-encoded columns.
///
/// This is the single entry point for feeding data into the library: real
/// data arrives through `tsv_io`, synthetic data through `ltm::synth`
/// generators; both produce a RawDatabase, from which FactTable and
/// ClaimTable are derived deterministically.
class RawDatabase {
 public:
  RawDatabase() = default;

  /// Interns the three strings and appends the triple if unseen.
  /// Returns true when a new row was inserted, false for a duplicate
  /// (the raw database is a set; duplicates are ignored, per Definition 1).
  bool Add(std::string_view entity, std::string_view attribute,
           std::string_view source);

  /// Id-level variant; the ids must have been produced by this database's
  /// interners.
  bool AddRow(EntityId e, AttributeId a, SourceId s);

  size_t NumRows() const { return rows_.size(); }
  const std::vector<RawRow>& rows() const { return rows_; }

  const StringInterner& entities() const { return entities_; }
  const StringInterner& attributes() const { return attributes_; }
  const StringInterner& sources() const { return sources_; }

  StringInterner& mutable_entities() { return entities_; }
  StringInterner& mutable_attributes() { return attributes_; }
  StringInterner& mutable_sources() { return sources_; }

  size_t NumEntities() const { return entities_.size(); }
  size_t NumAttributes() const { return attributes_.size(); }
  size_t NumSources() const { return sources_.size(); }

  /// True when the exact triple is present.
  bool Contains(EntityId e, AttributeId a, SourceId s) const;

  /// Re-adds every row of `src` (by string, in row order, deduped),
  /// optionally restricted to entities with key in
  /// [*min_entity, *max_entity]. String-level adds rebuild a
  /// first-appearance interning order identical to batch ingestion of the
  /// concatenated row stream — the property the streaming pipeline and
  /// the TruthStore's bit-identical materialization both rest on.
  void MergeRowsFrom(const RawDatabase& src,
                     const std::string* min_entity = nullptr,
                     const std::string* max_entity = nullptr);

 private:
  StringInterner entities_;
  StringInterner attributes_;
  StringInterner sources_;
  std::vector<RawRow> rows_;
  std::unordered_set<RawRow, RawRowHash> seen_;
};

}  // namespace ltm

#endif  // LTM_DATA_RAW_DATABASE_H_
