#include "store/truth_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string_view>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace ltm {
namespace store {

namespace {

namespace fs = std::filesystem;

/// WallTimer is steady-clock based, so timing here is monitoring-only and
/// never feeds data-path results (determinism lint R2 allows it).
uint64_t ElapsedMicros(const WallTimer& timer) {
  return static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
}

bool MatchesPattern(std::string_view name, std::string_view prefix,
                    std::string_view suffix) {
  return name.size() >= prefix.size() + suffix.size() &&
         name.substr(0, prefix.size()) == prefix &&
         name.substr(name.size() - suffix.size()) == suffix;
}

SegmentInfo MakeSegmentInfo(uint64_t id, const std::string& file,
                            uint32_t level,
                            const BlockSegmentBuildInfo& built) {
  SegmentInfo info;
  info.id = id;
  info.file = file;
  info.level = level;
  info.num_rows = built.num_rows;
  info.num_facts = built.num_facts;
  info.num_sources = built.num_sources;
  info.num_positive = built.num_positive;
  info.min_entity = built.min_entity;
  info.max_entity = built.max_entity;
  info.min_seq = built.min_seq;
  info.max_seq = built.max_seq;
  info.file_bytes = built.file_bytes;
  info.num_blocks = built.num_blocks;
  return info;
}

/// Byte budget of level `level` (>= 1): the base for L1, 10x per level
/// after that — the classic leveled-LSM geometry that bounds per-level
/// write amplification to ~O(levels).
uint64_t LevelTargetBytes(uint64_t base, uint32_t level) {
  uint64_t target = base;
  for (uint32_t l = 1; l < level; ++l) target *= 10;
  return target;
}

/// Files in `dir` that the committed `manifest` does not account for:
/// temp files, segments it never committed, rotated-but-uncommitted
/// WALs. Open() removes them, Verify() reports them — one classifier so
/// the two can never drift apart.
std::vector<std::string> FindOrphanFiles(const std::string& dir,
                                         const Manifest& manifest) {
  std::vector<std::string> orphans;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    bool orphan = false;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      orphan = true;
    } else if (MatchesPattern(name, "seg-", ".blk")) {
      orphan = true;
      for (const SegmentInfo& seg : manifest.segments) {
        if (seg.file == name) orphan = false;
      }
    } else if (MatchesPattern(name, "seg-", ".snap")) {
      // Pre-block-format segment droppings; a v2 manifest never
      // references them.
      orphan = true;
    } else if (MatchesPattern(name, "wal-", ".log")) {
      orphan = name != manifest.wal_file;
    }
    if (orphan) orphans.push_back(name);
  }
  return orphans;
}

/// Merges a `key="value"` label fragment into a metric name:
/// `name` -> `name{label}`, `name{a="b"}` -> `name{a="b",label}`. An
/// empty label keeps the name untouched, so unpartitioned stores expose
/// the exact historical series names.
std::string Labeled(const std::string& name, const std::string& label) {
  if (label.empty()) return name;
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + label + "}";
  }
  return name + "{" + label + "}";
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return bytes;
}

}  // namespace

std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.blk",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string WalFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string StoreVerifyReport::Summary() const {
  std::string s = "manifest generation " + std::to_string(generation) + ": " +
                  std::to_string(segments) + " segment(s), max level " +
                  std::to_string(max_level) + ", " +
                  std::to_string(segment_rows) + " segment row(s), " +
                  std::to_string(manifest_edits) + " manifest edit(s), " +
                  std::to_string(wal_records) + " WAL record(s)";
  if (manifest_torn_tail) s += " (torn MANIFEST tail ignored)";
  if (wal_torn_tail) s += " (torn WAL tail ignored)";
  if (!orphan_files.empty()) {
    s += "; orphans:";
    for (const std::string& f : orphan_files) s += " " + f;
  }
  return s;
}

TruthStore::TruthStore(std::string dir, TruthStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      wal_appends_(metrics_->counter(
          Labeled("ltm_store_wal_appends_total", options.metrics_label))),
      wal_syncs_(metrics_->counter(
          Labeled("ltm_store_wal_syncs_total", options.metrics_label))),
      wal_append_micros_(metrics_->histogram(
          Labeled("ltm_store_wal_append_micros", options.metrics_label))),
      wal_sync_micros_(metrics_->histogram(
          Labeled("ltm_store_wal_sync_micros", options.metrics_label))),
      flushes_(metrics_->counter(
          Labeled("ltm_store_flushes_total", options.metrics_label))),
      flush_rows_(metrics_->counter(
          Labeled("ltm_store_flush_rows_total", options.metrics_label))),
      flush_micros_(metrics_->histogram(
          Labeled("ltm_store_flush_micros", options.metrics_label))),
      compactions_(metrics_->counter(
          Labeled("ltm_store_compactions_total", options.metrics_label))),
      compaction_trivial_moves_(metrics_->counter(
          Labeled("ltm_store_compaction_trivial_moves_total",
                  options.metrics_label))),
      compaction_input_segments_(metrics_->counter(
          Labeled("ltm_store_compaction_input_segments_total",
                  options.metrics_label))),
      compaction_output_segments_(metrics_->counter(
          Labeled("ltm_store_compaction_output_segments_total",
                  options.metrics_label))),
      compaction_bytes_read_(metrics_->counter(
          Labeled("ltm_store_compaction_bytes_read_total",
                  options.metrics_label))),
      compaction_bytes_written_(metrics_->counter(
          Labeled("ltm_store_compaction_bytes_written_total",
                  options.metrics_label))),
      compaction_rows_dropped_(metrics_->counter(
          Labeled("ltm_store_compaction_rows_dropped_total",
                  options.metrics_label))),
      compaction_micros_(metrics_->histogram(
          Labeled("ltm_store_compaction_micros", options.metrics_label))),
      bloom_point_skips_(metrics_->counter(
          Labeled("ltm_store_bloom_point_skips_total", options.metrics_label))),
      epoch_gauge_(metrics_->gauge(
          Labeled("ltm_store_epoch", options.metrics_label))),
      memtable_rows_gauge_(metrics_->gauge(
          Labeled("ltm_store_memtable_rows", options.metrics_label))),
      live_pins_gauge_(metrics_->gauge(
          Labeled("ltm_store_live_pins", options.metrics_label))),
      cache_(options.posterior_cache_capacity, metrics_),
      block_cache_(static_cast<uint64_t>(options.block_cache_mb) << 20,
                   /*num_shards=*/8, metrics_) {}

std::string TruthStore::SegmentPath(const SegmentInfo& seg) const {
  return dir_ + "/" + seg.file;
}

std::string TruthStore::WalPath(const std::string& file) const {
  return dir_ + "/" + file;
}

BlockSegmentWriterOptions TruthStore::WriterOptions() const {
  BlockSegmentWriterOptions w;
  w.block_size_bytes = options_.block_size_bytes;
  w.restart_interval = options_.restart_interval;
  w.bloom_bits_per_key = options_.bloom_bits_per_key;
  return w;
}

Result<std::unique_ptr<TruthStore>> TruthStore::Open(
    const std::string& dir, TruthStoreOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<TruthStore> st(new TruthStore(dir, options));
  // Recovery below writes manifest_/wal_/memtable_ directly. No other
  // thread can see the store yet, but the guarded fields still demand the
  // capability, so hold the (uncontended) lock for the whole open.
  MutexLock lock(st->mu_);

  Result<ManifestLoad> loaded = LoadManifestDetailed(dir);
  if (!loaded.ok() && loaded.status().code() == StatusCode::kNotFound) {
    // Fresh directory: create the first WAL, then commit the first
    // manifest (in that order, so a committed manifest never references a
    // WAL that was never created).
    // Distinguish a genuinely fresh directory (possibly with droppings of
    // a crashed first open: a torn or empty WAL) from a store that LOST
    // its manifest. Appends are only acknowledged after the first
    // manifest commit, so a first-open crash can leave at most a
    // header-sized WAL and no segments; anything more means committed
    // data whose manifest is missing — re-initializing would destroy it.
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (MatchesPattern(name, "seg-", ".blk") ||
          MatchesPattern(name, "seg-", ".snap") ||
          (MatchesPattern(name, "wal-", ".log") &&
           fs::file_size(entry.path(), ec) > kWalHeaderSize)) {
        return Status::FailedPrecondition(
            "store directory " + dir + " has no MANIFEST but contains " +
            name + "; refusing to re-initialize over existing store data");
      }
    }
    Manifest fresh;
    fresh.generation = 1;
    fresh.next_segment_id = 1;
    fresh.wal_seq = 1;
    fresh.wal_file = WalFileName(1);
    fresh.next_row_seq = 0;
    // Discard the crashed first open's torn/empty WAL (checked above to
    // hold no records) rather than refusing to open.
    fs::remove(dir + "/" + fresh.wal_file, ec);
    LTM_ASSIGN_OR_RETURN(WalWriter wal,
                         WalWriter::Open(dir + "/" + fresh.wal_file));
    LTM_RETURN_IF_ERROR(CommitManifest(dir, fresh));
    st->manifest_ = std::move(fresh);
    st->wal_ = std::move(wal);
    st->epoch_ = st->manifest_.generation;
    st->epoch_gauge_->Set(static_cast<int64_t>(st->epoch_));
    return st;
  }
  LTM_RETURN_IF_ERROR(loaded.status());
  if (loaded->torn_tail) {
    // A crash mid-append left a torn edit record: an unacknowledged
    // commit. Truncate it away so the next append lands after a clean
    // record boundary.
    fs::resize_file(dir + "/" + kManifestFileName, loaded->valid_bytes, ec);
    if (ec) {
      return Status::IOError("cannot truncate torn MANIFEST tail of " + dir +
                             "/" + kManifestFileName + ": " + ec.message());
    }
    LTM_LOG(Info) << "truthstore: truncated torn MANIFEST tail at byte "
                  << loaded->valid_bytes;
  }
  st->manifest_ = std::move(loaded->manifest);
  st->edits_since_snapshot_ = loaded->edits;

  // Remove droppings of interrupted flushes/compactions: segment files
  // the manifest never committed, rotated-but-uncommitted WALs, temp
  // files. Everything the committed manifest references is kept.
  for (const std::string& name : FindOrphanFiles(dir, st->manifest_)) {
    LTM_LOG(Info) << "truthstore: removing orphan " << name;
    fs::remove(dir + "/" + name, ec);
  }

  // Replay the WAL tail over the committed segment set, truncating any
  // torn suffix so the appender resumes at the last intact record.
  const std::string wal_path = st->WalPath(st->manifest_.wal_file);
  if (fs::exists(wal_path)) {
    LTM_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(wal_path));
    if (replay.torn_tail) {
      fs::resize_file(wal_path, replay.valid_bytes, ec);
      if (ec) {
        return Status::IOError("cannot truncate torn WAL tail of " + wal_path +
                               ": " + ec.message());
      }
      st->recovered_torn_tail_ = true;
      LTM_LOG(Info) << "truthstore: truncated torn WAL tail of " << wal_path
                    << " at byte " << replay.valid_bytes;
    }
    for (const WalRecord& record : replay.records) {
      if (record.observation != 1) {
        return Status::InvalidArgument(
            "WAL record with observation bit " +
            std::to_string(record.observation) +
            " (explicit negative observations are reserved): " + wal_path);
      }
      const size_t before = st->memtable_.NumRows();
      st->memtable_.Add(record.entity, record.attribute, record.source);
      if (options.external_sequencing &&
          st->memtable_.NumRows() > before) {
        st->memtable_seqs_.push_back(record.seq);
      }
    }
    st->wal_records_replayed_ = replay.records.size();
  } else {
    LTM_LOG(Warning) << "truthstore: manifest references missing WAL "
                     << wal_path << "; starting it empty";
  }
  LTM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(wal_path));
  st->wal_ = std::move(wal);
  st->epoch_ = st->manifest_.generation + st->wal_records_replayed_;
  st->epoch_gauge_->Set(static_cast<int64_t>(st->epoch_));
  st->memtable_rows_gauge_->Set(static_cast<int64_t>(st->memtable_.NumRows()));
  return st;
}

Status TruthStore::Append(const WalRecord& record) {
  MutexLock lock(mu_);
  return AppendLocked(record);
}

Status TruthStore::AppendLocked(const WalRecord& record) {
  if (record.observation != 1) {
    return Status::InvalidArgument(
        "explicit negative observations are reserved; the store only "
        "accepts observation = 1");
  }
  WallTimer append_timer;
  LTM_RETURN_IF_ERROR(wal_->Append(record));
  wal_appends_->Increment();
  wal_append_micros_->Record(ElapsedMicros(append_timer));
  if (options_.sync_every_append) {
    obs::ObsSpan span("wal_sync");
    WallTimer sync_timer;
    LTM_RETURN_IF_ERROR(wal_->Sync());
    wal_syncs_->Increment();
    wal_sync_micros_->Record(ElapsedMicros(sync_timer));
  }
  const size_t before = memtable_.NumRows();
  memtable_.Add(record.entity, record.attribute, record.source);
  if (options_.external_sequencing && memtable_.NumRows() > before) {
    memtable_seqs_.push_back(record.seq);
  }
  ++epoch_;
  epoch_gauge_->Set(static_cast<int64_t>(epoch_));
  memtable_rows_gauge_->Set(static_cast<int64_t>(memtable_.NumRows()));
  if (options_.memtable_flush_rows > 0 &&
      memtable_.NumRows() >= options_.memtable_flush_rows) {
    return FlushLocked();
  }
  return Status::OK();
}

Status TruthStore::AppendRaw(const RawDatabase& raw) {
  {
    MutexLock lock(mu_);
    for (const RawRow& row : raw.rows()) {
      WalRecord record;
      record.entity = std::string(raw.entities().Get(row.entity));
      record.attribute = std::string(raw.attributes().Get(row.attribute));
      record.source = std::string(raw.sources().Get(row.source));
      LTM_RETURN_IF_ERROR(AppendLocked(record));
    }
  }
  return Sync();
}

Status TruthStore::AppendRecords(const std::vector<WalRecord>& records) {
  {
    MutexLock lock(mu_);
    for (const WalRecord& record : records) {
      LTM_RETURN_IF_ERROR(AppendLocked(record));
    }
  }
  return Sync();
}

Status TruthStore::Sync() {
  MutexLock lock(mu_);
  obs::ObsSpan span("wal_sync");
  WallTimer timer;
  LTM_RETURN_IF_ERROR(wal_->Sync());
  wal_syncs_->Increment();
  wal_sync_micros_->Record(ElapsedMicros(timer));
  return Status::OK();
}

Status TruthStore::Flush() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Result<bool> TruthStore::CommitVersionLocked(const Manifest& next,
                                             const VersionEdit& edit) {
  // Fold the edit log into a fresh snapshot every
  // `manifest_snapshot_every` edits; otherwise append one O(delta) edit
  // record.
  const bool fold =
      edits_since_snapshot_ + 1 >= options_.manifest_snapshot_every;
  Status st = fold ? CommitManifest(dir_, next) : AppendManifestEdit(dir_, edit);
  bool adopted = false;
  if (!st.ok()) {
    // Both commit paths can fail *after* the new state became visible (a
    // snapshot's trailing directory fsync, an edit append whose fsync
    // failed and whose claw-back truncate also failed). Treating that as
    // "nothing happened" would leave this process appending to a WAL the
    // on-disk manifest no longer references — silently losing
    // acknowledged appends at the next open. So reconcile against disk:
    // if the new generation is what a reopen would see, adopt the commit
    // (degraded durability) instead of diverging from it.
    Result<Manifest> on_disk = LoadManifest(dir_);
    if (!on_disk.ok() || on_disk->generation != next.generation) {
      return st;  // the commit really did not land
    }
    LTM_LOG(Warning) << "truthstore: manifest commit generation "
                     << next.generation
                     << " is visible but not durably synced ("
                     << st.ToString() << "); adopting it and keeping "
                     << "superseded files";
    adopted = true;
  }
  edits_since_snapshot_ = fold ? 0 : edits_since_snapshot_ + 1;
  return adopted;
}

Status TruthStore::FlushLocked() {
  if (memtable_.NumRows() == 0) return Status::OK();
  obs::ObsSpan span("memtable_flush");
  WallTimer flush_timer;

  const uint64_t seg_id = manifest_.next_segment_id;
  const std::string file = SegmentFileName(seg_id);

  // Assign contiguous global ingest sequence numbers in memtable row
  // order (= WAL/ingest order); replay sorts on them, so this is the step
  // that makes compaction free to reorder rows on disk. Under external
  // sequencing the rows already carry router-assigned global seqs
  // (tracked in memtable_seqs_), so those are persisted instead and the
  // next_row_seq watermark advances past the largest one.
  std::vector<SegmentRow> rows;
  rows.reserve(memtable_.NumRows());
  uint64_t seq = manifest_.next_row_seq;
  size_t row_idx = 0;
  for (const RawRow& row : memtable_.rows()) {
    SegmentRow r;
    r.entity = std::string(memtable_.entities().Get(row.entity));
    r.attribute = std::string(memtable_.attributes().Get(row.attribute));
    r.source = std::string(memtable_.sources().Get(row.source));
    if (options_.external_sequencing) {
      r.seq = memtable_seqs_[row_idx];
      seq = std::max(seq, r.seq + 1);
    } else {
      r.seq = seq++;
    }
    ++row_idx;
    r.observation = 1;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(), SegmentRowOrder);

  LTM_ASSIGN_OR_RETURN(
      const BlockSegmentBuildInfo built,
      WriteBlockSegment(dir_ + "/" + file, rows, WriterOptions()));
  LTM_RETURN_IF_ERROR(FailpointCheck("store-flush-segment-written"));

  // Rotate the WAL before committing, so the committed manifest always
  // references an existing file. A crash in between leaves an orphan WAL
  // the next Open removes.
  const uint64_t new_wal_seq = manifest_.wal_seq + 1;
  Result<WalWriter> new_wal = WalWriter::Open(WalPath(WalFileName(new_wal_seq)));
  LTM_RETURN_IF_ERROR(new_wal.status());
  LTM_RETURN_IF_ERROR(FailpointCheck("store-flush-wal-rotated"));

  VersionEdit edit;
  edit.generation = manifest_.generation + 1;
  edit.next_segment_id = seg_id + 1;
  edit.wal_seq = new_wal_seq;
  edit.wal_file = WalFileName(new_wal_seq);
  edit.next_row_seq = seq;
  edit.added.push_back(MakeSegmentInfo(seg_id, file, /*level=*/0, built));
  Manifest next = manifest_;
  LTM_RETURN_IF_ERROR(ApplyVersionEdit(&next, edit, "flush commit"));
  LTM_ASSIGN_OR_RETURN(const bool adopted, CommitVersionLocked(next, edit));

  // Committed: only now mutate in-memory state and drop the old WAL.
  // On an adopted (visible-but-unsynced) commit the old WAL is kept: if
  // power loss reverts the commit, the old manifest still finds it.
  const std::string old_wal = WalPath(manifest_.wal_file);
  manifest_ = std::move(next);
  wal_ = std::move(new_wal).value();
  memtable_ = RawDatabase();
  memtable_seqs_.clear();
  ++epoch_;
  flushes_->Increment();
  flush_rows_->Increment(rows.size());
  flush_micros_->Record(ElapsedMicros(flush_timer));
  epoch_gauge_->Set(static_cast<int64_t>(epoch_));
  memtable_rows_gauge_->Set(0);
  if (!adopted) {
    std::error_code ec;
    fs::remove(old_wal, ec);  // best-effort; Open() reaps leftovers
  }
  return Status::OK();
}

Status TruthStore::Compact() {
  // One compaction at a time: a second caller (sync or async) would
  // capture the same segment set, race the first commit, and could
  // produce conflicting version edits.
  std::vector<SegmentInfo> captured;
  uint32_t out_level = 1;
  {
    MutexLock lock(mu_);
    if (compacting_) {
      return Status::FailedPrecondition("a compaction is already running");
    }
    if (manifest_.segments.size() < 2) return Status::OK();
    captured = manifest_.segments;
    out_level = std::max(1u, manifest_.MaxLevel());
    compacting_ = true;
  }
  Status st = CompactSegmentsInner(captured, out_level);
  MutexLock lock(mu_);
  compacting_ = false;
  return st;
}

Result<bool> TruthStore::CompactOnce() {
  std::vector<SegmentInfo> inputs;
  uint32_t out_level = 1;
  {
    MutexLock lock(mu_);
    if (compacting_) {
      return Status::FailedPrecondition("a compaction is already running");
    }
    if (manifest_.NumSegmentsAtLevel(0) >= options_.l0_compaction_trigger) {
      // L0 segments may overlap each other, so all of them merge together
      // with every L1 segment their combined range touches.
      std::string min_e, max_e;
      bool first = true;
      for (const SegmentInfo& seg : manifest_.segments) {
        if (seg.level != 0) continue;
        inputs.push_back(seg);
        if (first || seg.min_entity < min_e) min_e = seg.min_entity;
        if (first || seg.max_entity > max_e) max_e = seg.max_entity;
        first = false;
      }
      for (const SegmentInfo& seg : manifest_.segments) {
        if (seg.level == 1 &&
            !(seg.max_entity < min_e || seg.min_entity > max_e)) {
          inputs.push_back(seg);
        }
      }
      out_level = 1;
    } else {
      for (uint32_t level = 1; level <= manifest_.MaxLevel(); ++level) {
        uint64_t level_bytes = 0;
        for (const SegmentInfo& seg : manifest_.segments) {
          if (seg.level == level) level_bytes += seg.file_bytes;
        }
        if (level_bytes <= LevelTargetBytes(options_.level_base_bytes, level)) {
          continue;
        }
        // Spill the range-smallest segment of the over-budget level into
        // the next, together with the next level's overlapping segments.
        const SegmentInfo* pick = nullptr;
        for (const SegmentInfo& seg : manifest_.segments) {
          if (seg.level != level) continue;
          if (pick == nullptr || seg.min_entity < pick->min_entity) {
            pick = &seg;
          }
        }
        inputs.push_back(*pick);
        for (const SegmentInfo& seg : manifest_.segments) {
          if (seg.level == level + 1 &&
              !(seg.max_entity < pick->min_entity ||
                seg.min_entity > pick->max_entity)) {
            inputs.push_back(seg);
          }
        }
        out_level = level + 1;
        break;
      }
    }
    if (inputs.empty()) return false;
    compacting_ = true;
  }
  Status st = inputs.size() == 1 ? TrivialMoveInner(inputs[0], out_level)
                                 : CompactSegmentsInner(inputs, out_level);
  {
    MutexLock lock(mu_);
    compacting_ = false;
  }
  LTM_RETURN_IF_ERROR(st);
  return true;
}

Status TruthStore::TrivialMoveInner(const SegmentInfo& seg,
                                    uint32_t output_level) {
  MutexLock lock(mu_);
  VersionEdit edit;
  edit.generation = manifest_.generation + 1;
  edit.next_segment_id = manifest_.next_segment_id;
  edit.wal_seq = manifest_.wal_seq;
  edit.wal_file = manifest_.wal_file;
  edit.next_row_seq = manifest_.next_row_seq;
  SegmentInfo moved = seg;
  moved.level = output_level;
  edit.deleted.push_back(seg.id);
  edit.added.push_back(std::move(moved));
  Manifest next = manifest_;
  LTM_RETURN_IF_ERROR(ApplyVersionEdit(&next, edit, "trivial move"));
  // Adopted or clean makes no difference here: no file was superseded.
  LTM_RETURN_IF_ERROR(CommitVersionLocked(next, edit).status());
  manifest_ = std::move(next);
  ++epoch_;
  epoch_gauge_->Set(static_cast<int64_t>(epoch_));
  compaction_trivial_moves_->Increment();
  LTM_LOG(Info) << "truthstore: moved " << seg.file << " to level "
                << output_level << " without rewriting";
  return Status::OK();
}

Status TruthStore::CompactSegmentsInner(const std::vector<SegmentInfo>& inputs,
                                        uint32_t output_level) {
  obs::ObsSpan span("compaction");
  WallTimer compaction_timer;
  // Merge outside the lock: segment files are immutable, so appends and
  // flushes proceed concurrently. Compaction reads bypass the block
  // cache — a one-shot full scan would only evict hot point-read blocks.
  std::vector<SegmentRow> rows;
  uint64_t bytes_read = 0;
  for (const SegmentInfo& seg : inputs) {
    LTM_ASSIGN_OR_RETURN(const std::shared_ptr<BlockSegmentReader> reader,
                         GetReader(seg));
    BlockSegmentReader::ReadStats rs;
    LTM_RETURN_IF_ERROR(reader->ReadRowsInRange(nullptr, nullptr,
                                                /*cache=*/nullptr, &rs,
                                                &rows));
    bytes_read += seg.file_bytes;
  }
  std::sort(rows.begin(), rows.end(), SegmentRowOrder);

  // Collapse duplicate (entity, attribute, source) triples onto their
  // first-ingested (minimum-seq) occurrence — the sort puts it first in
  // each group. Replay dedups identically, so posteriors are unchanged;
  // the later copies were pure dead weight.
  std::vector<SegmentRow> unique_rows;
  unique_rows.reserve(rows.size());
  std::set<std::string> seen_sources;
  std::string group_entity, group_attribute;
  bool have_group = false;
  uint64_t dropped = 0;
  for (SegmentRow& row : rows) {
    if (!have_group || row.entity != group_entity ||
        row.attribute != group_attribute) {
      group_entity = row.entity;
      group_attribute = row.attribute;
      seen_sources.clear();
      have_group = true;
    }
    if (!seen_sources.insert(row.source).second) {
      ++dropped;
      continue;
    }
    unique_rows.push_back(std::move(row));
  }

  // Split the output at entity boundaries near segment_target_bytes so
  // levels >= 1 stay made of bounded, non-overlapping segments. An
  // entity never straddles two outputs.
  std::vector<std::vector<SegmentRow>> groups;
  groups.emplace_back();
  uint64_t group_bytes = 0;
  for (SegmentRow& row : unique_rows) {
    const uint64_t row_bytes =
        row.entity.size() + row.attribute.size() + row.source.size() + 16;
    if (group_bytes >= options_.segment_target_bytes &&
        !groups.back().empty() && row.entity != groups.back().back().entity) {
      groups.emplace_back();
      group_bytes = 0;
    }
    group_bytes += row_bytes;
    groups.back().push_back(std::move(row));
  }
  if (groups.back().empty()) {
    return Status::Internal("compaction produced no rows from " +
                            std::to_string(inputs.size()) + " segments");
  }

  // Reserve the output ids now so a concurrent flush cannot take them
  // while the files are written outside the lock.
  uint64_t first_id = 0;
  {
    MutexLock lock(mu_);
    first_id = manifest_.next_segment_id;
    manifest_.next_segment_id += groups.size();
  }

  std::vector<SegmentInfo> outputs;
  uint64_t bytes_written = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    const uint64_t id = first_id + i;
    const std::string file = SegmentFileName(id);
    LTM_ASSIGN_OR_RETURN(
        const BlockSegmentBuildInfo built,
        WriteBlockSegment(dir_ + "/" + file, groups[i], WriterOptions()));
    outputs.push_back(MakeSegmentInfo(id, file, output_level, built));
    bytes_written += built.file_bytes;
  }
  LTM_RETURN_IF_ERROR(FailpointCheck("store-compact-segment-written"));

  bool adopted = false;
  {
    MutexLock lock(mu_);
    VersionEdit edit;
    edit.generation = manifest_.generation + 1;
    edit.next_segment_id = manifest_.next_segment_id;
    edit.wal_seq = manifest_.wal_seq;
    edit.wal_file = manifest_.wal_file;
    edit.next_row_seq = manifest_.next_row_seq;
    edit.added = outputs;
    for (const SegmentInfo& seg : inputs) edit.deleted.push_back(seg.id);
    Manifest next = manifest_;
    LTM_RETURN_IF_ERROR(ApplyVersionEdit(&next, edit, "compaction commit"));
    LTM_ASSIGN_OR_RETURN(adopted, CommitVersionLocked(next, edit));
    manifest_ = std::move(next);
    ++epoch_;
    epoch_gauge_->Set(static_cast<int64_t>(epoch_));
    compactions_->Increment();
    compaction_input_segments_->Increment(inputs.size());
    compaction_output_segments_->Increment(outputs.size());
    compaction_bytes_read_->Increment(bytes_read);
    compaction_bytes_written_->Increment(bytes_written);
    compaction_rows_dropped_->Increment(dropped);
  }
  const uint64_t compact_micros = ElapsedMicros(compaction_timer);
  compaction_micros_->Record(compact_micros);
  // Per-level write-amp accounting: the labeled series register lazily
  // the first time a compaction lands on each output level (merged with
  // the store's partition label, if it has one).
  const std::string level_label = Labeled(
      "{level=\"" + std::to_string(output_level) + "\"}",
      options_.metrics_label);
  metrics_->counter("ltm_store_compaction_micros_total" + level_label)
      ->Increment(compact_micros);
  metrics_->counter("ltm_store_compaction_bytes_written_total" + level_label)
      ->Increment(bytes_written);

  if (!adopted) {
    // Keep the merged-away segments when the commit's durability
    // degraded: if power loss reverts the un-synced commit, the old
    // manifest still finds its segment files on the next open.
    std::vector<SegmentInfo> doomed;
    {
      MutexLock lock(mu_);
      for (const SegmentInfo& seg : inputs) {
        if (pin_refs_.count(seg.id) != 0) {
          // A live EpochPin still reads this segment: defer the delete
          // until the last referencing pin drops (see ReleasePin).
          deferred_segments_.push_back(seg);
        } else {
          doomed.push_back(seg);
        }
      }
    }
    std::error_code ec;
    for (const SegmentInfo& seg : doomed) {
      DropSegmentCaches(seg.id);
      fs::remove(SegmentPath(seg), ec);  // best-effort
    }
  }
  LTM_LOG(Info) << "truthstore: compacted " << inputs.size()
                << " segment(s) into " << outputs.size() << " at level "
                << output_level << " (" << dropped << " duplicate row(s) "
                << "dropped)";
  return Status::OK();
}

std::shared_future<Status> TruthStore::CompactAsync(ThreadPool& pool) {
  std::shared_future<Status> job =
      pool.SubmitWithStatus([this] { return Compact(); });
  MutexLock lock(mu_);
  // Track every outstanding job (not just the latest — a fast-failing
  // duplicate must not drop the handle to a still-running merge), pruning
  // the ones that already resolved.
  std::erase_if(pending_compactions_, [](const std::shared_future<Status>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
  pending_compactions_.push_back(job);
  return job;
}

TruthStore::~TruthStore() {
  // Join all background compactions: their jobs captured `this` raw, so
  // the store must stay alive until the pool has run (or drained) them.
  std::vector<std::shared_future<Status>> pending;
  {
    MutexLock lock(mu_);
    pending.swap(pending_compactions_);
  }
  for (const std::shared_future<Status>& job : pending) {
    if (job.valid()) job.wait();
  }
}

EpochPin::~EpochPin() { store_->ReleasePin(*this); }

std::unique_ptr<EpochPin> TruthStore::PinEpoch(
    const std::string* min_entity, const std::string* max_entity) const {
  std::vector<SegmentInfo> segments;
  std::vector<WalRecord> memtable_rows;
  uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    segments = manifest_.segments;
    epoch = epoch_;
    // Copy out only the rows the query needs — a point read must not
    // stall concurrent appends for a full-memtable copy. Each copied row
    // carries its global ingest seq: the router-assigned one under
    // external sequencing, else the provisional seq the next flush would
    // assign — either way every pinned row is totally ordered by seq,
    // with memtable rows sorting after all committed segment rows.
    size_t row_idx = 0;
    for (const RawRow& row : memtable_.rows()) {
      const size_t idx = row_idx++;
      const std::string_view entity = memtable_.entities().Get(row.entity);
      if ((min_entity != nullptr && entity < *min_entity) ||
          (max_entity != nullptr && entity > *max_entity)) {
        continue;
      }
      WalRecord record;
      record.entity = std::string(entity);
      record.attribute = std::string(memtable_.attributes().Get(row.attribute));
      record.source = std::string(memtable_.sources().Get(row.source));
      record.seq = options_.external_sequencing
                       ? memtable_seqs_[idx]
                       : manifest_.next_row_seq + idx;
      memtable_rows.push_back(std::move(record));
    }
    // Reference every captured segment so a compaction that supersedes
    // one defers deleting its file until this pin drops.
    for (const SegmentInfo& seg : segments) ++pin_refs_[seg.id];
    ++live_pins_;
    live_pins_gauge_->Set(static_cast<int64_t>(live_pins_));
  }
  return std::unique_ptr<EpochPin>(new EpochPin(
      this, epoch, std::move(segments), std::move(memtable_rows)));
}

void TruthStore::ReleasePin(const EpochPin& pin) const {
  std::vector<SegmentInfo> reclaim;
  {
    MutexLock lock(mu_);
    --live_pins_;
    live_pins_gauge_->Set(static_cast<int64_t>(live_pins_));
    for (const SegmentInfo& seg : pin.segments()) {
      auto it = pin_refs_.find(seg.id);
      if (it != pin_refs_.end() && --it->second == 0) pin_refs_.erase(it);
    }
    // A deferred segment with no remaining references can be reclaimed.
    std::erase_if(deferred_segments_, [&](const SegmentInfo& seg) {
      if (pin_refs_.count(seg.id) != 0) return false;
      reclaim.push_back(seg);
      return true;
    });
  }
  std::error_code ec;
  for (const SegmentInfo& seg : reclaim) {
    DropSegmentCaches(seg.id);
    fs::remove(SegmentPath(seg), ec);  // best-effort; Open() reaps leftovers
  }
}

Result<std::shared_ptr<BlockSegmentReader>> TruthStore::GetReader(
    const SegmentInfo& seg) const {
  {
    MutexLock lock(readers_mu_);
    const auto it = readers_.find(seg.id);
    if (it != readers_.end()) return it->second;
  }
  // Open outside the lock (footer + index + bloom reads); a racing open
  // of the same segment just loses and adopts the winner's reader.
  LTM_ASSIGN_OR_RETURN(std::shared_ptr<BlockSegmentReader> reader,
                       BlockSegmentReader::Open(SegmentPath(seg), seg.id));
  MutexLock lock(readers_mu_);
  const auto [it, inserted] = readers_.emplace(seg.id, std::move(reader));
  return it->second;
}

void TruthStore::DropSegmentCaches(uint64_t id) const {
  {
    MutexLock lock(readers_mu_);
    readers_.erase(id);
  }
  block_cache_.EraseSegment(id);
}

Result<std::vector<SegmentRow>> TruthStore::CollectPinnedRows(
    const EpochPin& pin, const std::string* min_entity,
    const std::string* max_entity, RangeScanStats* stats) const {
  RangeScanStats scan;
  const bool point_read = min_entity != nullptr && max_entity != nullptr &&
                          *min_entity == *max_entity;
  std::vector<SegmentRow> rows;
  for (const SegmentInfo& seg : pin.segments()) {
    if ((min_entity != nullptr && seg.max_entity < *min_entity) ||
        (max_entity != nullptr && seg.min_entity > *max_entity)) {
      ++scan.segments_skipped;
      continue;  // zone stats prove the segment is outside the range
    }
    // No retry loop anywhere below: the pin's refcounts keep every
    // referenced segment file on disk, so a read failure here is true
    // corruption.
    LTM_ASSIGN_OR_RETURN(const std::shared_ptr<BlockSegmentReader> reader,
                         GetReader(seg));
    if (point_read && !reader->MayContainEntity(*min_entity)) {
      ++scan.segments_skipped_bloom;
      continue;
    }
    ++scan.segments_scanned;
    LTM_RETURN_IF_ERROR(FailpointCheck("store-pinned-read"));
    BlockSegmentReader::ReadStats rs;
    LTM_RETURN_IF_ERROR(reader->ReadRowsInRange(min_entity, max_entity,
                                                &block_cache_, &rs, &rows));
    scan.blocks_read += rs.blocks_read;
    scan.block_cache_hits += rs.blocks_from_cache;
    scan.bytes_read += rs.bytes_read;
  }
  // The pin's memtable rows already carry seqs that sort after every
  // committed segment row (see PinEpoch), so one uniform sort recovers
  // global ingest order across segments AND the memtable.
  for (const WalRecord& record : pin.memtable_rows()) {
    if ((min_entity != nullptr && record.entity < *min_entity) ||
        (max_entity != nullptr && record.entity > *max_entity)) {
      continue;
    }
    SegmentRow row;
    row.entity = record.entity;
    row.attribute = record.attribute;
    row.source = record.source;
    row.seq = record.seq;
    row.observation = record.observation;
    rows.push_back(std::move(row));
  }
  // Rows arrived in per-segment key order; global ingest-sequence order
  // is the replay order that keeps posteriors bit-identical to a batch
  // load (sequence numbers are unique, so this sort has one answer).
  std::sort(rows.begin(), rows.end(),
            [](const SegmentRow& a, const SegmentRow& b) {
              return a.seq < b.seq;
            });
  if (stats != nullptr) *stats = scan;
  return rows;
}

Result<Dataset> TruthStore::MaterializeFromPin(
    const EpochPin& pin, const std::string* min_entity,
    const std::string* max_entity, RangeScanStats* stats) const {
  LTM_ASSIGN_OR_RETURN(
      const std::vector<SegmentRow> rows,
      CollectPinnedRows(pin, min_entity, max_entity, stats));
  RawDatabase combined;
  for (const SegmentRow& row : rows) {
    combined.Add(row.entity, row.attribute, row.source);
  }
  return Dataset::FromRaw("truthstore:" + dir_, std::move(combined));
}

Result<bool> TruthStore::PinnedFactMayExist(const EpochPin& pin,
                                            const std::string& entity,
                                            const std::string& attribute) const {
  for (const WalRecord& record : pin.memtable_rows()) {
    if (record.entity == entity && record.attribute == attribute) return true;
  }
  for (const SegmentInfo& seg : pin.segments()) {
    if (seg.max_entity < entity || seg.min_entity > entity) continue;
    LTM_ASSIGN_OR_RETURN(const std::shared_ptr<BlockSegmentReader> reader,
                         GetReader(seg));
    if (reader->MayContainFact(entity, attribute)) return true;
  }
  bloom_point_skips_->Increment();
  return false;
}

std::unique_ptr<StorePin> TruthStore::PinSnapshot(
    const std::string* min_entity, const std::string* max_entity) const {
  return PinEpoch(min_entity, max_entity);
}

Result<Dataset> TruthStore::MaterializeSnapshot(
    const StorePin& pin, const std::string* min_entity,
    const std::string* max_entity, RangeScanStats* stats) const {
  const EpochPin* epoch_pin = pin.AsEpochPin();
  if (epoch_pin == nullptr || epoch_pin->store_ != this) {
    return Status::InvalidArgument("pin was not issued by this store");
  }
  return MaterializeFromPin(*epoch_pin, min_entity, max_entity, stats);
}

Result<bool> TruthStore::SnapshotFactMayExist(
    const StorePin& pin, const std::string& entity,
    const std::string& attribute) const {
  const EpochPin* epoch_pin = pin.AsEpochPin();
  if (epoch_pin == nullptr || epoch_pin->store_ != this) {
    return Status::InvalidArgument("pin was not issued by this store");
  }
  return PinnedFactMayExist(*epoch_pin, entity, attribute);
}

Result<Dataset> TruthStore::Materialize(uint64_t* epoch_out) const {
  return MaterializeImpl(nullptr, nullptr, nullptr, epoch_out);
}

Result<Dataset> TruthStore::MaterializeEntityRange(
    const std::string& min_entity, const std::string& max_entity,
    RangeScanStats* stats, uint64_t* epoch_out) const {
  return MaterializeImpl(&min_entity, &max_entity, stats, epoch_out);
}

Result<Dataset> TruthStore::MaterializeImpl(const std::string* min_entity,
                                            const std::string* max_entity,
                                            RangeScanStats* stats,
                                            uint64_t* epoch_out) const {
  // Pinning replaces the old snapshot-and-retry dance: a concurrent
  // compaction cannot delete a segment file this read references, so one
  // pass always succeeds (any load failure is true corruption).
  const std::unique_ptr<EpochPin> pin = PinEpoch(min_entity, max_entity);
  LTM_ASSIGN_OR_RETURN(Dataset ds,
                       MaterializeFromPin(*pin, min_entity, max_entity,
                                          stats));
  if (epoch_out != nullptr) *epoch_out = pin->epoch();
  return ds;
}

uint64_t TruthStore::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

TruthStoreStats TruthStore::Stats() const {
  TruthStoreStats stats;
  {
    MutexLock lock(mu_);
    stats.epoch = epoch_;
    stats.generation = manifest_.generation;
    stats.num_segments = manifest_.segments.size();
    stats.segment_rows = manifest_.TotalSegmentRows();
    stats.memtable_rows = memtable_.NumRows();
    stats.wal_records_replayed = wal_records_replayed_;
    stats.recovered_torn_tail = recovered_torn_tail_;
    stats.live_pins = live_pins_;
    stats.deferred_segments = deferred_segments_.size();
    stats.max_level = manifest_.MaxLevel();
    stats.l0_segments = manifest_.NumSegmentsAtLevel(0);
    stats.next_row_seq = manifest_.next_row_seq;
    stats.manifest_edits_since_snapshot = edits_since_snapshot_;
    stats.compaction.compactions = compactions_->Value();
    stats.compaction.trivial_moves = compaction_trivial_moves_->Value();
    stats.compaction.input_segments = compaction_input_segments_->Value();
    stats.compaction.output_segments = compaction_output_segments_->Value();
    stats.compaction.bytes_read = compaction_bytes_read_->Value();
    stats.compaction.bytes_written = compaction_bytes_written_->Value();
    stats.compaction.rows_dropped = compaction_rows_dropped_->Value();
  }
  stats.bloom_point_skips = bloom_point_skips_->Value();
  stats.block_cache = block_cache_.Stats();
  return stats;
}

std::vector<SegmentInfo> TruthStore::segments() const {
  MutexLock lock(mu_);
  return manifest_.segments;
}

size_t TruthStore::num_pinned_epochs() const {
  MutexLock lock(mu_);
  return live_pins_;
}

size_t TruthStore::num_deferred_segments() const {
  MutexLock lock(mu_);
  return deferred_segments_.size();
}

uint64_t TruthStore::NextRowSeq() const {
  MutexLock lock(mu_);
  uint64_t next = manifest_.next_row_seq;
  for (const uint64_t seq : memtable_seqs_) {
    next = std::max(next, seq + 1);
  }
  return next;
}

Result<StoreVerifyReport> TruthStore::Verify(const std::string& dir) {
  LTM_ASSIGN_OR_RETURN(const ManifestLoad load, LoadManifestDetailed(dir));
  const Manifest& manifest = load.manifest;
  StoreVerifyReport report;
  report.generation = manifest.generation;
  report.max_level = manifest.MaxLevel();
  report.manifest_edits = load.edits;
  report.manifest_torn_tail = load.torn_tail;
  for (const SegmentInfo& seg : manifest.segments) {
    const std::string path = dir + "/" + seg.file;
    LTM_ASSIGN_OR_RETURN(const std::string bytes, ReadFileBytes(path));
    LTM_ASSIGN_OR_RETURN(const ParsedBlockSegment parsed,
                         ParseBlockSegmentFromBytes(bytes, path));
    // Recompute the zone stats from the decoded rows (which
    // ParseBlockSegmentFromBytes already proved sorted and
    // checksum-clean) and compare against the manifest's copy.
    uint64_t num_facts = 0;
    uint64_t num_positive = 0;
    uint64_t min_seq = 0;
    uint64_t max_seq = 0;
    std::set<std::string_view> sources;
    for (size_t i = 0; i < parsed.rows.size(); ++i) {
      const SegmentRow& row = parsed.rows[i];
      if (i == 0 || row.entity != parsed.rows[i - 1].entity ||
          row.attribute != parsed.rows[i - 1].attribute) {
        ++num_facts;
      }
      sources.insert(row.source);
      if (row.observation == 1) ++num_positive;
      if (i == 0 || row.seq < min_seq) min_seq = row.seq;
      if (i == 0 || row.seq > max_seq) max_seq = row.seq;
    }
    if (parsed.rows.size() != seg.num_rows || num_facts != seg.num_facts ||
        sources.size() != seg.num_sources ||
        num_positive != seg.num_positive ||
        parsed.rows.front().entity != seg.min_entity ||
        parsed.rows.back().entity != seg.max_entity ||
        min_seq != seg.min_seq || max_seq != seg.max_seq ||
        bytes.size() != seg.file_bytes ||
        parsed.blocks.size() != seg.num_blocks) {
      return Status::InvalidArgument(
          "segment " + seg.file + " does not match its manifest zone stats");
    }
    if (seg.max_seq >= manifest.next_row_seq) {
      return Status::InvalidArgument(
          "segment " + seg.file + " holds seq " + std::to_string(seg.max_seq) +
          " >= manifest next_row_seq " +
          std::to_string(manifest.next_row_seq));
    }
    ++report.segments;
    report.segment_rows += seg.num_rows;
  }
  // Level invariant: within every level >= 1, entity ranges are disjoint
  // (that is what lets a point read touch at most one segment per level).
  for (uint32_t level = 1; level <= manifest.MaxLevel(); ++level) {
    std::vector<const SegmentInfo*> at_level;
    for (const SegmentInfo& seg : manifest.segments) {
      if (seg.level == level) at_level.push_back(&seg);
    }
    std::sort(at_level.begin(), at_level.end(),
              [](const SegmentInfo* a, const SegmentInfo* b) {
                return a->min_entity < b->min_entity;
              });
    for (size_t i = 1; i < at_level.size(); ++i) {
      if (at_level[i]->min_entity <= at_level[i - 1]->max_entity) {
        return Status::InvalidArgument(
            "level " + std::to_string(level) + " segments " +
            at_level[i - 1]->file + " and " + at_level[i]->file +
            " have overlapping entity ranges");
      }
    }
  }
  const std::string wal_path = dir + "/" + manifest.wal_file;
  if (fs::exists(wal_path)) {
    LTM_ASSIGN_OR_RETURN(const WalReplay replay, ReplayWal(wal_path));
    report.wal_records = replay.records.size();
    report.wal_torn_tail = replay.torn_tail;
  }
  report.orphan_files = FindOrphanFiles(dir, manifest);
  return report;
}

}  // namespace store
}  // namespace ltm
