#ifndef LTM_TRUTH_GIBBS_KERNEL_H_
#define LTM_TRUTH_GIBBS_KERNEL_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/claim_graph.h"
#include "truth/options.h"

namespace ltm {

/// Memoized transcendental tables for the fused Gibbs kernel: the Eq. 2
/// conditional depends on the per-source counts n_{s,i,j} only through
/// log(n + alpha_{i,j}) and log(n_{s,i,0} + n_{s,i,1} + alpha_i0 +
/// alpha_i1), and the counts are small non-negative integers (bounded by
/// the busiest source's claim count). So each distinct argument is
/// log()'d once and every later sweep reads it back from a lazily-grown
/// table — the precompute-the-transcendentals idiom of large-scale
/// collapsed Gibbs/LDA samplers.
///
/// Tables are keyed by the truth label i (and observation j for the
/// numerator family) because the Beta pseudo-counts differ per (i, j).
/// One instance serves one chain (or one shard: growth is not
/// synchronized — give concurrent shards their own instance).
class LogCountTables {
 public:
  /// Per-table memoization cap. Counts at or beyond the cap (a source
  /// with > 64k claims) fall back to a direct std::log of the identical
  /// argument — same value to the bit, so behavior is unaffected — which
  /// bounds each table at 512 KB and the eager Grow fill at 64k logs no
  /// matter how prolific the busiest source is (tables are duplicated
  /// per shard, so an uncapped build would multiply by thread count).
  static constexpr size_t kMaxEntries = 1 << 16;

  LogCountTables() = default;

  /// (Re-)binds the tables to a prior configuration and drops any
  /// memoized entries. alpha[i][j] is the Eq. 2 pseudo-count layout used
  /// by the samplers: alpha[0] = {alpha0.neg, alpha0.pos}, alpha[1] =
  /// {alpha1.neg, alpha1.pos}.
  void Reset(const std::array<std::array<double, 2>, 2>& alpha);

  /// log(n + alpha[i][j]); n >= 0.
  double LogNum(int i, int j, int64_t n) {
    const size_t idx = static_cast<size_t>(n);
    if (idx >= kMaxEntries) {
      return std::log(static_cast<double>(n) + alpha_[i][j]);
    }
    std::vector<double>& t = num_[i][j];
    if (idx >= t.size()) Grow(&t, alpha_[i][j], idx);
    return t[idx];
  }

  /// log(n + alpha[i][0] + alpha[i][1]); n >= 0.
  double LogDen(int i, int64_t n) {
    const size_t idx = static_cast<size_t>(n);
    if (idx >= kMaxEntries) {
      return std::log(static_cast<double>(n) + alpha_sum_[i]);
    }
    std::vector<double>& t = den_[i];
    if (idx >= t.size()) Grow(&t, alpha_sum_[i], idx);
    return t[idx];
  }

 private:
  /// Extends `t` so index `needed` exists (callers guarantee `needed` is
  /// below kMaxEntries), filling log(k + offset). Doubling growth keeps
  /// the amortized cost per distinct count O(1).
  static void Grow(std::vector<double>* t, double offset, size_t needed);

  std::array<std::array<std::vector<double>, 2>, 2> num_;
  std::array<std::vector<double>, 2> den_;
  std::array<std::array<double, 2>, 2> alpha_{};
  std::array<double, 2> alpha_sum_{};
};

/// The fused per-fact Gibbs update: returns the flip log-odds
///
///   delta = log p(t_f = 1-cur | t_-f, o) - log p(t_f = cur | t_-f, o)
///
/// in a single pass over fact f's packed adjacency, with the cur-side
/// self-exclusion folded into the table indices (fact f's own claim is
/// always counted under cur, so n_{s,cur,j} - 1 and n_{s,cur,+} - 1 are
/// the excluded counts and never go negative). The reference kernel
/// walks the adjacency twice and calls std::log four times per entry;
/// this walks it once and calls std::log zero times once the tables are
/// warm. p(flip) = sigmoid(delta).
///
/// `counts` is the n_{s,i,j} matrix flattened s*4 + i*2 + j — the
/// authoritative matrix of a sequential chain or a shard's private copy.
/// `log_beta[i]` is log(beta_i) of the truth prior. Both samplers call
/// this exact function so fused chains share one floating-point
/// operation sequence regardless of which sampler runs them.
double FusedFlipLogOdds(const ClaimGraph& graph, FactId f, int cur,
                        const std::vector<int64_t>& counts,
                        const std::array<double, 2>& log_beta,
                        LogCountTables* tables);

/// One fused Gibbs pass over facts [begin, end): per fact, evaluate
/// FusedFlipLogOdds, draw one uniform from `rng`, and on a flip update
/// `truth` and `counts` in place. Returns the flip count. Both LtmGibbs
/// and ParallelLtmGibbs run their fused sweeps through this single
/// function, so the bit-identical-across-samplers guarantee for a fused
/// (single-shard) chain holds by construction rather than by keeping two
/// loop copies in sync.
int FusedSweepRange(const ClaimGraph& graph, FactId begin, FactId end,
                    std::vector<uint8_t>* truth,
                    std::vector<int64_t>* counts,
                    const std::array<double, 2>& log_beta,
                    LogCountTables* tables, Rng* rng);

/// Rebuilds the flattened n_{s,i,j} count matrix (s*4 + i*2 + j, the
/// layout both kernels index) from the graph and a truth assignment.
/// `counts` must already be sized NumSources()*4; it is zeroed first.
/// Shared by both samplers' lazy count builds so the packing layout
/// cannot drift between the sequential and sharded chains.
void RecountClaims(const ClaimGraph& graph,
                   const std::vector<uint8_t>& truth,
                   std::vector<int64_t>* counts);

/// Resolves LtmKernel::kAuto for a sampler running `num_shards` shards:
/// one shard keeps the bit-pinned reference kernel, a sharded run gets
/// the fused kernel. Explicit choices pass through.
LtmKernel ResolveKernel(LtmKernel kernel, int num_shards);

}  // namespace ltm

#endif  // LTM_TRUTH_GIBBS_KERNEL_H_
