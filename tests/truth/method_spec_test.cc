#include "truth/method_spec.h"

#include <gtest/gtest.h>

namespace ltm {
namespace {

TEST(MethodSpecTest, BareNameParses) {
  auto spec = MethodSpec::Parse("LTM");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "LTM");
  EXPECT_TRUE(spec->options.empty());
}

TEST(MethodSpecTest, WhitespaceIsTolerated) {
  auto spec = MethodSpec::Parse("  TruthFinder ( rho = 0.5 , gamma = 0.3 ) ");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "TruthFinder");
  EXPECT_EQ(spec->options.size(), 2u);
  EXPECT_TRUE(spec->options.Has("rho"));
  EXPECT_TRUE(spec->options.Has("GAMMA"));  // Keys are case-insensitive.
}

TEST(MethodSpecTest, EmptyArgumentListParses) {
  auto spec = MethodSpec::Parse("Voting()");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "Voting");
  EXPECT_TRUE(spec->options.empty());
}

TEST(MethodSpecTest, TypedGetters) {
  auto spec = MethodSpec::Parse(
      "M(d=0.25,i=42,u=18446744073709551615,b1=true,b2=off,s=hello)");
  ASSERT_TRUE(spec.ok());
  const MethodOptions& o = spec->options;
  EXPECT_DOUBLE_EQ(o.GetDouble("d", 0.0).value(), 0.25);
  EXPECT_EQ(o.GetInt("i", 0).value(), 42);
  EXPECT_EQ(o.GetUint64("u", 0).value(), 18446744073709551615ull);
  EXPECT_TRUE(o.GetBool("b1", false).value());
  EXPECT_FALSE(o.GetBool("b2", true).value());
  EXPECT_EQ(o.GetString("s", "").value(), "hello");
  // Absent keys fall back.
  EXPECT_DOUBLE_EQ(o.GetDouble("missing", 7.5).value(), 7.5);
  EXPECT_EQ(o.GetInt("missing2", -3).value(), -3);
}

TEST(MethodSpecTest, TypeMismatchesAreInvalidArgument) {
  auto spec = MethodSpec::Parse("M(d=abc,i=1.5,u=-4,b=maybe,e=)");
  ASSERT_TRUE(spec.ok());
  const MethodOptions& o = spec->options;
  EXPECT_EQ(o.GetDouble("d", 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(o.GetInt("i", 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(o.GetUint64("u", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(o.GetBool("b", false).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(o.GetDouble("e", 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MethodSpecTest, ConsumptionTracking) {
  auto spec = MethodSpec::Parse("M(known=1,unknown=2)");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(spec->options.GetInt("known", 0).ok());
  Status st = spec->options.CheckAllConsumed("M");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unknown"), std::string::npos);
  // After consuming the remaining key the check passes.
  ASSERT_TRUE(spec->options.GetInt("unknown", 0).ok());
  EXPECT_TRUE(spec->options.CheckAllConsumed("M").ok());
}

TEST(MethodSpecTest, MalformedSpecs) {
  for (const char* bad :
       {"", "  ", "(x=1)", "M(x=1", "M)", "M(x)", "M(=1)", "M(x=1,x=2)",
        "M((x=1))", "M(x=1))"}) {
    auto spec = MethodSpec::Parse(bad);
    EXPECT_FALSE(spec.ok()) << "'" << bad << "'";
  }
}

TEST(MethodSpecTest, ToStringRoundTrips) {
  auto spec = MethodSpec::Parse("LTM(iterations=200, seed=7)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->ToString(), "LTM(iterations=200,seed=7)");
  auto reparsed = MethodSpec::Parse(spec->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->name, "LTM");
  EXPECT_EQ(reparsed->options.size(), 2u);
}

}  // namespace
}  // namespace ltm
