#ifndef LTM_SYNTH_LABELING_H_
#define LTM_SYNTH_LABELING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace ltm {
namespace synth {

/// Samples `num_entities` entities uniformly without replacement —
/// mimicking the paper's protocol of manually labeling 100 random books /
/// movies (§6.1.1).
std::vector<EntityId> SampleEntities(const Dataset& dataset,
                                     size_t num_entities, uint64_t seed);

/// Restriction of `dataset.labels` to the facts of `entities`; all other
/// facts become unlabeled. The result is what the evaluation harness
/// grades against, exactly like the paper's 100-entity labeled sample.
TruthLabels LabelsForEntities(const Dataset& dataset,
                              const std::vector<EntityId>& entities);

}  // namespace synth
}  // namespace ltm

#endif  // LTM_SYNTH_LABELING_H_
