#include "store/manifest.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/failpoint.h"
#include "common/fs_util.h"
#include "common/hash.h"
#include "store/record_io.h"

namespace ltm {
namespace store {

namespace {

constexpr size_t kManifestHeaderSize = 8;
constexpr size_t kRecordHeaderSize = 12;  // u32 size + u64 checksum
constexpr uint8_t kRecordSnapshot = 1;
constexpr uint8_t kRecordEdit = 2;

/// Each encoded segment costs at least 7 u64 counters + 2 u32 + 3 u32
/// string length prefixes; checked against the bytes actually present
/// BEFORE any reserve so a forged count cannot size a multi-gigabyte
/// allocation.
constexpr uint64_t kMinEncodedSegmentBytes = 7 * 8 + 2 * 4 + 3 * 4;

void PutSegment(ByteWriter* w, const SegmentInfo& seg) {
  w->PutU64(seg.id);
  w->PutString(seg.file);
  w->PutU32(seg.level);
  w->PutU64(seg.num_rows);
  w->PutU64(seg.num_facts);
  w->PutU64(seg.num_sources);
  w->PutU64(seg.num_positive);
  w->PutString(seg.min_entity);
  w->PutString(seg.max_entity);
  w->PutU64(seg.min_seq);
  w->PutU64(seg.max_seq);
  w->PutU64(seg.file_bytes);
  w->PutU32(seg.num_blocks);
}

Result<SegmentInfo> GetSegment(ByteReader* r) {
  SegmentInfo seg;
  LTM_ASSIGN_OR_RETURN(seg.id, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.file, r->GetString());
  LTM_ASSIGN_OR_RETURN(seg.level, r->GetU32());
  LTM_ASSIGN_OR_RETURN(seg.num_rows, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.num_facts, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.num_sources, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.num_positive, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.min_entity, r->GetString());
  LTM_ASSIGN_OR_RETURN(seg.max_entity, r->GetString());
  LTM_ASSIGN_OR_RETURN(seg.min_seq, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.max_seq, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.file_bytes, r->GetU64());
  LTM_ASSIGN_OR_RETURN(seg.num_blocks, r->GetU32());
  return seg;
}

Result<std::vector<SegmentInfo>> GetSegmentList(ByteReader* r,
                                                const std::string& label) {
  LTM_ASSIGN_OR_RETURN(const uint64_t count, r->GetU64());
  if (count > r->Remaining() / kMinEncodedSegmentBytes) {
    return Status::InvalidArgument(
        "corrupt manifest: segment count larger than payload: " + label);
  }
  std::vector<SegmentInfo> segments;
  segments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LTM_ASSIGN_OR_RETURN(SegmentInfo seg, GetSegment(r));
    segments.push_back(std::move(seg));
  }
  return segments;
}

std::string EncodeRecord(std::string_view payload) {
  std::string out;
  out.reserve(kRecordHeaderSize + payload.size());
  const uint32_t size = static_cast<uint32_t>(payload.size());
  const uint64_t checksum = Fnv1a64(payload);
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.append(payload);
  return out;
}

std::string EncodeSnapshotPayload(const Manifest& m) {
  ByteWriter w;
  w.PutU8(kRecordSnapshot);
  w.PutU64(m.generation);
  w.PutU64(m.next_segment_id);
  w.PutU64(m.wal_seq);
  w.PutString(m.wal_file);
  w.PutU64(m.next_row_seq);
  w.PutU64(m.segments.size());
  for (const SegmentInfo& seg : m.segments) PutSegment(&w, seg);
  return w.bytes();
}

std::string EncodeEditPayload(const VersionEdit& e) {
  ByteWriter w;
  w.PutU8(kRecordEdit);
  w.PutU64(e.generation);
  w.PutU64(e.next_segment_id);
  w.PutU64(e.wal_seq);
  w.PutString(e.wal_file);
  w.PutU64(e.next_row_seq);
  w.PutU64(e.added.size());
  for (const SegmentInfo& seg : e.added) PutSegment(&w, seg);
  w.PutU64(e.deleted.size());
  for (const uint64_t id : e.deleted) w.PutU64(id);
  return w.bytes();
}

Status ValidateSegmentList(const std::vector<SegmentInfo>& segments,
                           uint64_t next_segment_id,
                           const std::string& label) {
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].id >= next_segment_id) {
      return Status::InvalidArgument(
          "corrupt manifest: segment id " + std::to_string(segments[i].id) +
          " >= next_segment_id " + std::to_string(next_segment_id) + ": " +
          label);
    }
    if (i > 0 && segments[i].id <= segments[i - 1].id) {
      return Status::InvalidArgument(
          "corrupt manifest: segment ids not strictly increasing: " + label);
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t Manifest::TotalSegmentRows() const {
  uint64_t total = 0;
  for (const SegmentInfo& seg : segments) total += seg.num_rows;
  return total;
}

size_t Manifest::NumSegmentsAtLevel(uint32_t level) const {
  size_t n = 0;
  for (const SegmentInfo& seg : segments) {
    if (seg.level == level) ++n;
  }
  return n;
}

uint32_t Manifest::MaxLevel() const {
  uint32_t max_level = 0;
  for (const SegmentInfo& seg : segments) {
    if (seg.level > max_level) max_level = seg.level;
  }
  return max_level;
}

Status ApplyVersionEdit(Manifest* m, const VersionEdit& edit,
                        const std::string& label) {
  if (edit.generation <= m->generation) {
    return Status::InvalidArgument(
        "corrupt manifest: edit generation " +
        std::to_string(edit.generation) + " does not advance " +
        std::to_string(m->generation) + ": " + label);
  }
  m->generation = edit.generation;
  m->next_segment_id = edit.next_segment_id;
  m->wal_seq = edit.wal_seq;
  m->wal_file = edit.wal_file;
  m->next_row_seq = edit.next_row_seq;
  for (const uint64_t id : edit.deleted) {
    const auto it = std::find_if(m->segments.begin(), m->segments.end(),
                                 [&](const SegmentInfo& s) {
                                   return s.id == id;
                                 });
    if (it == m->segments.end()) {
      return Status::InvalidArgument(
          "corrupt manifest: edit deletes unknown segment " +
          std::to_string(id) + ": " + label);
    }
    m->segments.erase(it);
  }
  for (const SegmentInfo& seg : edit.added) {
    const auto it = std::lower_bound(m->segments.begin(), m->segments.end(),
                                     seg.id,
                                     [](const SegmentInfo& s, uint64_t id) {
                                       return s.id < id;
                                     });
    if (it != m->segments.end() && it->id == seg.id) {
      return Status::InvalidArgument(
          "corrupt manifest: edit re-adds live segment " +
          std::to_string(seg.id) + ": " + label);
    }
    m->segments.insert(it, seg);
  }
  return ValidateSegmentList(m->segments, m->next_segment_id, label);
}

Result<ManifestLoad> LoadManifestFromBytes(std::string_view bytes,
                                           const std::string& label) {
  if (bytes.size() < kManifestHeaderSize) {
    return Status::InvalidArgument(
        "corrupt manifest: shorter than the header: " + label);
  }
  if (std::memcmp(bytes.data(), kManifestMagic, 4) != 0) {
    return Status::InvalidArgument("corrupt manifest: bad magic: " + label);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kManifestVersion) {
    return Status::InvalidArgument(
        "unsupported manifest version " + std::to_string(version) + ": " +
        label);
  }

  ManifestLoad load;
  size_t pos = kManifestHeaderSize;
  bool have_snapshot = false;
  while (pos < bytes.size()) {
    // A record cut off mid-write (torn header, short payload, checksum
    // mismatch) is an unacknowledged commit: stop at the intact prefix.
    if (bytes.size() - pos < kRecordHeaderSize) break;
    uint32_t size = 0;
    uint64_t checksum = 0;
    std::memcpy(&size, bytes.data() + pos, sizeof(size));
    std::memcpy(&checksum, bytes.data() + pos + 4, sizeof(checksum));
    if (size > bytes.size() - pos - kRecordHeaderSize) break;
    const std::string_view payload =
        bytes.substr(pos + kRecordHeaderSize, size);
    if (Fnv1a64(payload) != checksum) break;

    // The record is intact; now malformed contents are real corruption,
    // not a torn tail.
    ByteReader r(payload.data(), payload.size());
    LTM_ASSIGN_OR_RETURN(const uint8_t type, r.GetU8());
    if (type == kRecordSnapshot) {
      if (have_snapshot) {
        return Status::InvalidArgument(
            "corrupt manifest: second snapshot record: " + label);
      }
      Manifest m;
      LTM_ASSIGN_OR_RETURN(m.generation, r.GetU64());
      LTM_ASSIGN_OR_RETURN(m.next_segment_id, r.GetU64());
      LTM_ASSIGN_OR_RETURN(m.wal_seq, r.GetU64());
      LTM_ASSIGN_OR_RETURN(m.wal_file, r.GetString());
      LTM_ASSIGN_OR_RETURN(m.next_row_seq, r.GetU64());
      LTM_ASSIGN_OR_RETURN(m.segments, GetSegmentList(&r, label));
      LTM_RETURN_IF_ERROR(
          ValidateSegmentList(m.segments, m.next_segment_id, label));
      load.manifest = std::move(m);
      have_snapshot = true;
    } else if (type == kRecordEdit) {
      if (!have_snapshot) {
        return Status::InvalidArgument(
            "corrupt manifest: edit record before any snapshot: " + label);
      }
      VersionEdit e;
      LTM_ASSIGN_OR_RETURN(e.generation, r.GetU64());
      LTM_ASSIGN_OR_RETURN(e.next_segment_id, r.GetU64());
      LTM_ASSIGN_OR_RETURN(e.wal_seq, r.GetU64());
      LTM_ASSIGN_OR_RETURN(e.wal_file, r.GetString());
      LTM_ASSIGN_OR_RETURN(e.next_row_seq, r.GetU64());
      LTM_ASSIGN_OR_RETURN(e.added, GetSegmentList(&r, label));
      LTM_ASSIGN_OR_RETURN(const uint64_t num_deleted, r.GetU64());
      if (num_deleted > r.Remaining() / sizeof(uint64_t)) {
        return Status::InvalidArgument(
            "corrupt manifest: deleted-id count larger than payload: " +
            label);
      }
      e.deleted.reserve(num_deleted);
      for (uint64_t i = 0; i < num_deleted; ++i) {
        LTM_ASSIGN_OR_RETURN(const uint64_t id, r.GetU64());
        e.deleted.push_back(id);
      }
      LTM_RETURN_IF_ERROR(ApplyVersionEdit(&load.manifest, e, label));
      ++load.edits;
    } else {
      return Status::InvalidArgument(
          "corrupt manifest: unknown record type " + std::to_string(type) +
          ": " + label);
    }
    if (r.Remaining() != 0) {
      return Status::InvalidArgument(
          "corrupt manifest: " + std::to_string(r.Remaining()) +
          " trailing record bytes: " + label);
    }
    ++load.records;
    pos += kRecordHeaderSize + size;
  }
  if (!have_snapshot) {
    return Status::InvalidArgument(
        "corrupt manifest: no intact snapshot record: " + label);
  }
  load.valid_bytes = pos;
  load.torn_tail = pos != bytes.size();
  return load;
}

Result<ManifestLoad> LoadManifestDetailed(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no manifest at " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("manifest read failed: " + path);
  return LoadManifestFromBytes(file, path);
}

Result<Manifest> LoadManifest(const std::string& dir) {
  LTM_ASSIGN_OR_RETURN(ManifestLoad load, LoadManifestDetailed(dir));
  return std::move(load.manifest);
}

Status CommitManifest(const std::string& dir, const Manifest& manifest) {
  char header[kManifestHeaderSize];
  std::memcpy(header, kManifestMagic, 4);
  const uint32_t version = kManifestVersion;
  std::memcpy(header + 4, &version, sizeof(version));
  return AtomicWriteFile(dir + "/" + kManifestFileName,
                         std::string_view(header, kManifestHeaderSize),
                         EncodeRecord(EncodeSnapshotPayload(manifest)));
}

Status AppendManifestEdit(const std::string& dir, const VersionEdit& edit) {
  const std::string path = dir + "/" + kManifestFileName;
  LTM_RETURN_IF_ERROR(FailpointCheck("manifest-edit-append:" + path));
  std::error_code ec;
  const uint64_t old_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat manifest for append: " + path + ": " +
                           ec.message());
  }
  const std::string record = EncodeRecord(EncodeEditPayload(edit));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError("cannot open manifest for append: " + path);
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    out.flush();
    if (!out) {
      // Claw back any partial bytes so an in-process retry appends after
      // a clean prefix instead of stranding a torn record mid-log.
      std::filesystem::resize_file(path, old_size, ec);
      return Status::IOError("manifest edit append failed: " + path);
    }
  }
  Status sync = FsyncFile(path);
  if (!sync.ok()) {
    std::filesystem::resize_file(path, old_size, ec);
    return sync;
  }
  return Status::OK();
}

}  // namespace store
}  // namespace ltm
