#include "eval/threshold_sweep.h"

#include <cassert>

namespace ltm {

double ThresholdSweep::BestAccuracyThreshold() const {
  double best = 0.0;
  double best_acc = -1.0;
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (metrics[i].accuracy() > best_acc) {
      best_acc = metrics[i].accuracy();
      best = thresholds[i];
    }
  }
  return best;
}

double ThresholdSweep::BestAccuracy() const {
  double best_acc = 0.0;
  for (const PointMetrics& m : metrics) {
    if (m.accuracy() > best_acc) best_acc = m.accuracy();
  }
  return best_acc;
}

double ThresholdSweep::BestF1Threshold() const {
  double best = 0.0;
  double best_f1 = -1.0;
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (metrics[i].f1() > best_f1) {
      best_f1 = metrics[i].f1();
      best = thresholds[i];
    }
  }
  return best;
}

ThresholdSweep SweepThresholds(const std::vector<double>& fact_probability,
                               const TruthLabels& labels, double lo, double hi,
                               int steps) {
  assert(steps >= 1);
  ThresholdSweep sweep;
  sweep.thresholds.reserve(steps + 1);
  sweep.metrics.reserve(steps + 1);
  for (int i = 0; i <= steps; ++i) {
    double t = lo + (hi - lo) * static_cast<double>(i) / steps;
    sweep.thresholds.push_back(t);
    sweep.metrics.push_back(EvaluateAtThreshold(fact_probability, labels, t));
  }
  return sweep;
}

}  // namespace ltm
