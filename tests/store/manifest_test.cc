#include "store/manifest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/hash.h"

namespace ltm {
namespace store {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/manifest_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void WriteManifestFile(const std::string& content) {
    std::ofstream out(dir_ + "/" + kManifestFileName,
                      std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string dir_;
};

template <typename T>
std::string EncodeLe(T v) {
  std::string out(sizeof(v), '\0');
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

std::string EncodeString(const std::string& s) {
  return EncodeLe<uint32_t>(static_cast<uint32_t>(s.size())) + s;
}

std::string ManifestFileFor(const std::string& payload) {
  std::string file(kManifestMagic, 4);
  file += EncodeLe<uint32_t>(kManifestVersion);
  file += EncodeLe<uint64_t>(payload.size());
  file += EncodeLe<uint64_t>(Fnv1a64(payload));
  return file + payload;
}

TEST_F(ManifestTest, RoundTripPreservesSegments) {
  Manifest m;
  m.generation = 3;
  m.next_segment_id = 7;
  m.wal_seq = 4;
  m.wal_file = "wal-000004.log";
  SegmentInfo seg;
  seg.id = 2;
  seg.file = "seg-000002.snap";
  seg.num_rows = 10;
  seg.num_facts = 6;
  seg.num_sources = 3;
  seg.num_claims = 12;
  seg.num_positive = 9;
  seg.min_entity = "aardvark";
  seg.max_entity = "zebra";
  m.segments.push_back(seg);

  ASSERT_TRUE(CommitManifest(dir_, m).ok());
  auto loaded = LoadManifest(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->generation, m.generation);
  EXPECT_EQ(loaded->next_segment_id, m.next_segment_id);
  EXPECT_EQ(loaded->wal_seq, m.wal_seq);
  EXPECT_EQ(loaded->wal_file, m.wal_file);
  ASSERT_EQ(loaded->segments.size(), 1u);
  EXPECT_EQ(loaded->segments[0], seg);
}

TEST_F(ManifestTest, MissingFileIsNotFound) {
  auto loaded = LoadManifest(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// Regression (satellite): a forged segment count must be rejected by
// arithmetic against the payload bytes actually present, BEFORE the
// vector reserve it would otherwise size. A 2^40 count over a tiny
// (correctly checksummed) payload used to attempt a ~100 TB reserve and
// die by OOM instead of by Status.
TEST_F(ManifestTest, RejectsSegmentCountAllocationBomb) {
  std::string payload;
  payload += EncodeLe<uint64_t>(1);             // generation
  payload += EncodeLe<uint64_t>(1);             // next_segment_id
  payload += EncodeLe<uint64_t>(1);             // wal_seq
  payload += EncodeString("wal-000001.log");    // wal_file
  payload += EncodeLe<uint64_t>(uint64_t{1} << 40);  // segment count: a lie
  payload += std::string(64, '\0');             // far fewer bytes than that
  WriteManifestFile(ManifestFileFor(payload));

  auto loaded = LoadManifest(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("segment count"),
            std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace ltm
