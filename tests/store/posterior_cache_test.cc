#include "store/posterior_cache.h"

#include <gtest/gtest.h>

namespace ltm {
namespace store {
namespace {

TEST(PosteriorCacheTest, HitAfterPut) {
  PosteriorCache cache(4);
  cache.Put("hp\tradcliffe", 7, 0.9);
  auto hit = cache.Get("hp\tradcliffe", 7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.9);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PosteriorCacheTest, MissOnUnknownKey) {
  PosteriorCache cache(4);
  EXPECT_FALSE(cache.Get("nope", 1).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PosteriorCacheTest, StaleEpochIsAMissAndEvicts) {
  PosteriorCache cache(4);
  cache.Put("k", 1, 0.4);
  // New evidence arrived (epoch advanced): the cached posterior no longer
  // reflects the store and must not be served.
  EXPECT_FALSE(cache.Get("k", 2).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Even asking again with the original epoch misses now.
  EXPECT_FALSE(cache.Get("k", 1).has_value());
}

TEST(PosteriorCacheTest, LruEvictionDropsTheColdestEntry) {
  PosteriorCache cache(2);
  cache.Put("a", 1, 0.1);
  cache.Put("b", 1, 0.2);
  ASSERT_TRUE(cache.Get("a", 1).has_value());  // warms "a"
  cache.Put("c", 1, 0.3);                      // evicts "b"
  EXPECT_TRUE(cache.Get("a", 1).has_value());
  EXPECT_FALSE(cache.Get("b", 1).has_value());
  EXPECT_TRUE(cache.Get("c", 1).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PosteriorCacheTest, PutRefreshesExistingKey) {
  PosteriorCache cache(2);
  cache.Put("k", 1, 0.1);
  cache.Put("k", 2, 0.9);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get("k", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.9);
}

TEST(PosteriorCacheTest, ZeroCapacityDisablesCaching) {
  PosteriorCache cache(0);
  cache.Put("k", 1, 0.5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("k", 1).has_value());
}

TEST(PosteriorCacheTest, ClearEmptiesTheCache) {
  PosteriorCache cache(4);
  cache.Put("a", 1, 0.1);
  cache.Put("b", 1, 0.2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a", 1).has_value());
}

}  // namespace
}  // namespace store
}  // namespace ltm
