#ifndef LTM_DATA_TRUTH_LABELS_H_
#define LTM_DATA_TRUTH_LABELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "data/types.h"

namespace ltm {

/// Ground-truth labels for a (possibly partial) subset of facts (paper
/// Definition 4). In the paper's evaluation, 100 entities per dataset were
/// manually labeled; the remaining facts stay unlabeled and are excluded
/// from the metrics. The label store is indexed by FactId.
class TruthLabels {
 public:
  TruthLabels() = default;

  /// Creates an all-unlabeled store for `num_facts` facts.
  explicit TruthLabels(size_t num_facts)
      : labels_(num_facts, kUnlabeled) {}

  size_t NumFacts() const { return labels_.size(); }

  void Set(FactId f, bool truth) {
    labels_[f] = truth ? kTrue : kFalse;
  }
  void Clear(FactId f) { labels_[f] = kUnlabeled; }

  bool IsLabeled(FactId f) const { return labels_[f] != kUnlabeled; }

  /// Label of `f`; nullopt when unlabeled.
  std::optional<bool> Get(FactId f) const {
    if (labels_[f] == kUnlabeled) return std::nullopt;
    return labels_[f] == kTrue;
  }

  /// FactIds with a label, ascending.
  std::vector<FactId> LabeledFacts() const;

  size_t NumLabeled() const;
  size_t NumLabeledTrue() const;

 private:
  static constexpr int8_t kUnlabeled = -1;
  static constexpr int8_t kFalse = 0;
  static constexpr int8_t kTrue = 1;

  std::vector<int8_t> labels_;
};

}  // namespace ltm

#endif  // LTM_DATA_TRUTH_LABELS_H_
