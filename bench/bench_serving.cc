// Serving-path benchmark: latency percentiles and throughput of
// serve::ServeSession point reads over a durable TruthStore, at 1/2/4
// client threads against an idle store, and at 4 client threads with a
// concurrent ingest thread (durable appends + flushes + compactions +
// background refit triggers). The mixed phase is the §5.4 deployment
// shape — the MVCC epoch-pin design means no read ever blocks on the
// writer, so the CI gate bounds the mixed p99 at a small multiple of
// the idle p99.
//
// Workload: open-loop — each client issues a query every
// kQueryIntervalUs so every phase sees the same arrival rate; 80% of
// queries hit a small hot set, 20% draw uniformly from every fact. The
// posterior cache is cleared at each phase boundary, so every phase's
// percentiles blend cache hits with entity-slice materializations in
// comparable proportions — an idle p99 of pure cache hits would make
// the mixed/idle ratio gate meaningless.
//
// Writes BENCH_serving.json for the CI benchmark artifact.
//
// With --partitions N (N >= 2) the durable store is an entity-range
// PartitionedTruthStore instead — boundaries at entity-name quantiles so
// the world spreads across every partition — and the JSON gains a
// per-partition stats array. The serving phases are unchanged: the
// session queries through the router, so this measures the partitioned
// read path under the same workload.
//
// Flags (for the CI smoke job):
//   --movies N        movie-world size (default 3000)
//   --duration-ms D   measured wall-clock per phase (default 1500)
//   --iterations N    Gibbs sweeps for the bootstrap fit (default 60)
//   --partitions N    serve from an N-way partitioned store (default 1)
//   --out FILE        JSON output path (default BENCH_serving.json)

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "eval/table_printer.h"
#include "ext/streaming.h"
#include "serve/serve_options.h"
#include "serve/serve_session.h"
#include "store/partitioned_store.h"
#include "store/truth_store.h"

namespace ltm {
namespace bench {
namespace {

struct ServingConfig {
  size_t movies = 3000;
  int duration_ms = 1500;
  int iterations = 60;
  size_t partitions = 1;
  std::string out = "BENCH_serving.json";
};

struct PhaseResult {
  std::string phase;
  int clients = 0;
  uint64_t queries = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct WorkerTally {
  std::vector<double> micros;
  uint64_t shed = 0;
  uint64_t errors = 0;
};

/// Open-loop pacing: one query per client per this interval, so the
/// arrival rate — and thus the hit/miss blend behind the percentiles —
/// is the same across idle and mixed phases.
constexpr int kQueryIntervalUs = 500;

/// One client thread: paced queries against the hot/cold mix until
/// `stop`. Exact per-query latencies are kept for offline percentiles.
void ClientLoop(serve::ServeSession* session,
                const std::vector<serve::FactRef>& hot,
                const std::vector<serve::FactRef>& cold, unsigned seed,
                const std::atomic<bool>* stop, WorkerTally* out) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_hot(0, hot.size() - 1);
  std::uniform_int_distribution<size_t> pick_cold(0, cold.size() - 1);
  std::uniform_int_distribution<int> pick_pool(0, 99);
  while (!stop->load(std::memory_order_relaxed)) {
    const serve::FactRef& ref =
        pick_pool(rng) < 80 ? hot[pick_hot(rng)] : cold[pick_cold(rng)];
    WallTimer timer;
    const Result<double> posterior = session->Query(ref);
    if (posterior.ok()) {
      out->micros.push_back(timer.ElapsedSeconds() * 1e6);
    } else if (posterior.status().code() == StatusCode::kResourceExhausted) {
      ++out->shed;
    } else {
      ++out->errors;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kQueryIntervalUs));
  }
}

double PercentileUs(std::vector<double>* sorted_micros, double q) {
  if (sorted_micros->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_micros->size() - 1) + 0.5);
  return (*sorted_micros)[std::min(idx, sorted_micros->size() - 1)];
}

PhaseResult RunPhase(const std::string& phase, serve::ServeSession* session,
                     int clients, int duration_ms,
                     const std::vector<serve::FactRef>& hot,
                     const std::vector<serve::FactRef>& cold) {
  // Phase boundary: drop all cached posteriors (via a quality-version
  // bump) so each phase re-pays its own slice materializations.
  if (Status st = session->RefreshQuality(); !st.ok()) {
    std::fprintf(stderr, "refresh: %s\n", st.ToString().c_str());
  }
  std::atomic<bool> stop{false};
  std::vector<WorkerTally> tallies(clients);
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, session, std::cref(hot), std::cref(cold),
                         1000003u * static_cast<unsigned>(c + 1), &stop,
                         &tallies[c]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  PhaseResult r;
  r.phase = phase;
  r.clients = clients;
  r.seconds = timer.ElapsedSeconds();
  std::vector<double> all;
  for (WorkerTally& tally : tallies) {
    all.insert(all.end(), tally.micros.begin(), tally.micros.end());
    r.shed += tally.shed;
    r.errors += tally.errors;
  }
  std::sort(all.begin(), all.end());
  r.queries = all.size();
  r.qps = r.seconds > 0.0 ? static_cast<double>(r.queries) / r.seconds : 0.0;
  r.p50_us = PercentileUs(&all, 0.50);
  r.p99_us = PercentileUs(&all, 0.99);
  return r;
}

/// Background writer for the mixed phase: re-appends arrival rows to the
/// store in small durable batches, flushing and compacting periodically,
/// and pokes the session's refit scheduler after every append. Each
/// append advances the epoch, so readers keep re-materializing slices —
/// the contention the mixed-phase gate measures.
void IngestLoop(store::TruthStoreBase* store, serve::ServeSession* session,
                const Dataset& arrivals, const std::atomic<bool>* stop,
                std::atomic<uint64_t>* appends) {
  const std::vector<RawRow>& rows = arrivals.raw.rows();
  size_t cursor = 0;
  uint64_t batch_index = 0;
  while (!stop->load(std::memory_order_relaxed) && !rows.empty()) {
    RawDatabase batch;
    for (size_t i = 0; i < 50; ++i) {
      const RawRow& row = rows[cursor];
      batch.Add(arrivals.raw.entities().Get(row.entity),
                arrivals.raw.attributes().Get(row.attribute),
                arrivals.raw.sources().Get(row.source));
      cursor = (cursor + 1) % rows.size();
    }
    if (!store->AppendRaw(batch).ok()) return;
    appends->fetch_add(1, std::memory_order_relaxed);
    (void)session->NotifyIngest();  // shed triggers are expected here
    ++batch_index;
    if (batch_index % 4 == 0 && !store->Flush().ok()) return;
    if (batch_index % 12 == 0 && !store->Compact().ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool Run(const ServingConfig& cfg) {
  BenchDataset bench = MakeMovieBench(cfg.movies);
  Dataset& world = bench.data;

  // Hold out ~10% of entities as the mixed-phase ingest stream.
  const size_t held_out = world.raw.NumEntities() / 10;
  auto [history, arrivals] =
      world.SplitByEntities(synth::SampleEntities(world, held_out, 7));

  // Two bootstrap segments so serving reads exercise zone-stat skipping
  // across segment files, not just one monolithic snapshot.
  std::vector<EntityId> first_half;
  for (EntityId e = 0;
       e < static_cast<EntityId>(history.raw.NumEntities() / 2); ++e) {
    first_half.push_back(e);
  }
  auto [second, first] = history.SplitByEntities(first_half);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ltm_bench_serving").string();
  std::filesystem::remove_all(dir);
  store::TruthStoreOptions store_options;
  store_options.metrics = &obs::MetricsRegistry::Global();
  std::unique_ptr<store::TruthStoreBase> store;
  store::PartitionedTruthStore* parted = nullptr;
  if (cfg.partitions > 1) {
    // Boundaries at entity-name quantiles, so the movie world spreads
    // across every partition no matter how its names are distributed.
    std::vector<std::string> names;
    names.reserve(world.raw.NumEntities());
    for (EntityId e = 0; e < static_cast<EntityId>(world.raw.NumEntities());
         ++e) {
      names.emplace_back(world.raw.entities().Get(e));
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    store::PartitionedStoreOptions popts;
    popts.store = store_options;
    popts.partitions = cfg.partitions;
    for (size_t b = 1; b < cfg.partitions; ++b) {
      popts.initial_boundaries.push_back(
          names[names.size() * b / cfg.partitions]);
    }
    auto opened = store::PartitionedTruthStore::Open(dir, popts);
    if (!opened.ok()) {
      std::fprintf(stderr, "store open: %s\n",
                   opened.status().ToString().c_str());
      return false;
    }
    parted = opened->get();
    store = std::move(*opened);
  } else {
    auto opened = store::TruthStore::Open(dir, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "store open: %s\n",
                   opened.status().ToString().c_str());
      return false;
    }
    store = std::move(*opened);
  }
  for (const Dataset* part : {&first, &second}) {
    if (!store->AppendDataset(*part).ok() || !store->Flush().ok()) {
      std::fprintf(stderr, "bootstrap ingest failed\n");
      return false;
    }
  }

  ext::StreamingOptions stream_opts;
  stream_opts.ltm = bench.ltm_options;
  stream_opts.ltm.iterations = cfg.iterations;
  stream_opts.ltm.burnin = cfg.iterations / 4;
  stream_opts.ltm.sample_gap = 2;
  ext::StreamingPipeline pipeline(stream_opts);
  {
    WallTimer timer;
    RunContext boot_ctx;
    boot_ctx.metrics = &obs::MetricsRegistry::Global();
    if (Status st = pipeline.BootstrapFromStore(store.get(), boot_ctx);
        !st.ok()) {
      std::fprintf(stderr, "bootstrap: %s\n", st.ToString().c_str());
      return false;
    }
    std::printf("bootstrap fit: %.2fs (%zu facts, 2 segments)\n",
                timer.ElapsedSeconds(), history.facts.NumFacts());
  }

  serve::ServeOptions serve_opts;
  serve_opts.max_inflight = 64;
  serve_opts.refit_debounce_epochs = 500;  // a few refits per mixed phase
  serve_opts.refit_queue = 2;
  auto session = serve::ServeSession::Create(&pipeline, serve_opts);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return false;
  }

  // Query pools from the durable history: hot = every fact of the first
  // 8 entities; cold = every fact.
  std::vector<serve::FactRef> hot;
  std::vector<serve::FactRef> cold;
  for (FactId f = 0; f < history.facts.NumFacts(); ++f) {
    const Fact& fact = history.facts.fact(f);
    serve::FactRef ref;
    ref.entity = std::string(history.raw.entities().Get(fact.entity));
    ref.attribute = std::string(history.raw.attributes().Get(fact.attribute));
    if (fact.entity < 8) hot.push_back(ref);
    cold.push_back(std::move(ref));
  }
  if (hot.empty()) hot.push_back(cold.front());

  PrintHeader("Serving latency/QPS: ServeSession over a TruthStore");
  std::printf("facts=%zu hot=%zu duration=%dms/phase\n\n",
              cold.size(), hot.size(), cfg.duration_ms);

  std::vector<PhaseResult> results;
  for (int clients : {1, 2, 4}) {
    results.push_back(RunPhase("idle", session->get(), clients,
                               cfg.duration_ms, hot, cold));
  }

  std::atomic<bool> stop_ingest{false};
  std::atomic<uint64_t> appends{0};
  std::thread ingest(IngestLoop, store.get(), session->get(),
                     std::cref(arrivals), &stop_ingest, &appends);
  results.push_back(
      RunPhase("mixed", session->get(), 4, cfg.duration_ms, hot, cold));
  stop_ingest.store(true, std::memory_order_relaxed);
  ingest.join();

  const serve::ServeStats stats = (*session)->Stats();
  TablePrinter table({"Phase", "Clients", "QPS", "p50 us", "p99 us", "Shed"});
  for (const PhaseResult& r : results) {
    table.AddRow({r.phase, std::to_string(r.clients), FormatDouble(r.qps, 0),
                  FormatDouble(r.p50_us, 1), FormatDouble(r.p99_us, 1),
                  std::to_string(r.shed)});
  }
  table.Print();
  std::printf(
      "\nmixed phase: %llu ingest batch(es); refits scheduled %llu / "
      "completed %llu / shed %llu; final epoch %llu\n"
      "session totals: %llu queries, %llu coalesced, %llu slice computes, "
      "cache %llu/%llu hit/miss\n",
      static_cast<unsigned long long>(appends.load()),
      static_cast<unsigned long long>(stats.refit.scheduled),
      static_cast<unsigned long long>(stats.refit.completed),
      static_cast<unsigned long long>(stats.refit.shed),
      static_cast<unsigned long long>(stats.epoch),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.slice_computes),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses));
  if (parted != nullptr) {
    const auto per_partition = parted->PartitionStats();
    std::printf("partitioned store: %zu partition(s)\n",
                per_partition.size());
    for (size_t p = 0; p < per_partition.size(); ++p) {
      const store::TruthStoreStats& ps = per_partition[p];
      std::printf("  partition %zu: %llu row(s), %zu segment(s), epoch %llu\n",
                  p,
                  static_cast<unsigned long long>(ps.segment_rows +
                                                  ps.memtable_rows),
                  ps.num_segments,
                  static_cast<unsigned long long>(ps.epoch));
    }
  }

  uint64_t total_errors = 0;
  for (const PhaseResult& r : results) total_errors += r.errors;
  if (total_errors != 0) {
    std::fprintf(stderr, "%llu unexpected query error(s)\n",
                 static_cast<unsigned long long>(total_errors));
    return false;
  }

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"dataset\": {\"movies\": %zu, \"facts\": %zu, "
               "\"hot_facts\": %zu},\n"
               "  \"partitions\": %zu,\n"
               "  \"duration_ms\": %d,\n"
               "  \"refits\": {\"scheduled\": %llu, \"completed\": %llu, "
               "\"shed\": %llu},\n"
               "  \"results\": [",
               cfg.movies, cold.size(), hot.size(), cfg.partitions,
               cfg.duration_ms,
               static_cast<unsigned long long>(stats.refit.scheduled),
               static_cast<unsigned long long>(stats.refit.completed),
               static_cast<unsigned long long>(stats.refit.shed));
  for (size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    std::fprintf(f,
                 "%s\n    {\"phase\": \"%s\", \"clients\": %d, "
                 "\"queries\": %llu, \"qps\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"shed\": %llu}",
                 i == 0 ? "" : ",", r.phase.c_str(), r.clients,
                 static_cast<unsigned long long>(r.queries), r.qps, r.p50_us,
                 r.p99_us, static_cast<unsigned long long>(r.shed));
  }
  std::fprintf(f, "\n  ],\n");
  if (parted != nullptr) {
    std::fprintf(f, "  \"per_partition\": [");
    const auto per_partition = parted->PartitionStats();
    for (size_t p = 0; p < per_partition.size(); ++p) {
      const store::TruthStoreStats& ps = per_partition[p];
      std::fprintf(f,
                   "%s{\"partition\": %zu, \"rows\": %llu, "
                   "\"segments\": %zu, \"epoch\": %llu}",
                   p == 0 ? "" : ", ", p,
                   static_cast<unsigned long long>(ps.segment_rows +
                                                   ps.memtable_rows),
                   ps.num_segments,
                   static_cast<unsigned long long>(ps.epoch));
    }
    std::fprintf(f, "],\n");
  }
  std::fprintf(f, "  \"metrics\": ");
  WriteMetricsJsonArray(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.out.c_str());
  std::filesystem::remove_all(dir);
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace ltm

int main(int argc, char** argv) {
  ltm::bench::ServingConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--movies") == 0) {
      const long movies = std::atol(next());
      if (movies <= 0) {
        std::fprintf(stderr, "--movies must be > 0\n");
        return 2;
      }
      cfg.movies = static_cast<size_t>(movies);
    } else if (std::strcmp(arg, "--duration-ms") == 0) {
      cfg.duration_ms = std::atoi(next());
    } else if (std::strcmp(arg, "--iterations") == 0) {
      cfg.iterations = std::atoi(next());
    } else if (std::strcmp(arg, "--partitions") == 0) {
      const long partitions = std::atol(next());
      if (partitions < 1 || partitions > 64) {
        std::fprintf(stderr, "--partitions must be in [1, 64]\n");
        return 2;
      }
      cfg.partitions = static_cast<size_t>(partitions);
    } else if (std::strcmp(arg, "--out") == 0) {
      cfg.out = next();
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expected --movies N, --duration-ms D, "
                   "--iterations N, --partitions N, --out FILE)\n",
                   arg);
      return 2;
    }
  }
  if (cfg.duration_ms <= 0 || cfg.iterations <= 0 || cfg.out.empty()) {
    std::fprintf(stderr,
                 "duration-ms and iterations must be > 0; --out needs a "
                 "path\n");
    return 2;
  }
  return ltm::bench::Run(cfg) ? 0 : 1;
}
