#include "truth/ltm_incremental.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "synth/labeling.h"
#include "synth/movie_simulator.h"
#include "test_util.h"
#include "truth/ltm.h"

namespace ltm {
namespace {

SourceQuality PerfectQualityForTwoSources() {
  SourceQuality q;
  q.sensitivity = {0.95, 0.40};
  q.specificity = {0.99, 0.99};
  q.precision = {0.99, 0.95};
  q.accuracy = {0.97, 0.70};
  q.expected_counts.assign(2, {0.0, 0.0, 0.0, 0.0});
  return q;
}

TEST(LtmIncrementalTest, Eq3ClosedFormOnSingleClaim) {
  // One positive claim from a source with sensitivity 0.95, FPR 0.01,
  // uniform truth prior: p(t=1) = 0.95 / (0.95 + 0.01).
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions opts;
  opts.beta = BetaPrior{1.0, 1.0};
  LtmIncremental inc(q, opts);
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 0, true}}, 1, 2);
  FactTable facts;
  TruthEstimate est = inc.Score(facts, claims);
  ASSERT_EQ(est.probability.size(), 1u);
  EXPECT_NEAR(est.probability[0], 0.95 / (0.95 + 0.01), 1e-9);
}

TEST(LtmIncrementalTest, NegativeClaimFromSensitiveSourceSuppresses) {
  // A negative claim from a high-sensitivity source is strong evidence of
  // falsehood: p(t=1) = 0.05 / (0.05 + 0.99).
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions opts;
  opts.beta = BetaPrior{1.0, 1.0};
  LtmIncremental inc(q, opts);
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 0, false}}, 1, 2);
  FactTable facts;
  TruthEstimate est = inc.Score(facts, claims);
  EXPECT_NEAR(est.probability[0], 0.05 / (0.05 + 0.99), 1e-9);
}

TEST(LtmIncrementalTest, NegativeClaimFromLowSensitivitySourceIsWeak) {
  // Source 1 has sensitivity 0.4: its omissions should barely count
  // (paper Example 4, the Netflix case).
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions opts;
  opts.beta = BetaPrior{1.0, 1.0};
  LtmIncremental inc(q, opts);
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 1, false}}, 1, 2);
  FactTable facts;
  TruthEstimate est = inc.Score(facts, claims);
  EXPECT_NEAR(est.probability[0], 0.60 / (0.60 + 0.99), 1e-9);
  EXPECT_GT(est.probability[0], 0.3);  // Much weaker suppression.
}

TEST(LtmIncrementalTest, PriorMeanFallbackForUnseenSources) {
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions opts;
  opts.alpha1 = BetaPrior{50.0, 50.0};   // Mean sensitivity 0.5.
  opts.alpha0 = BetaPrior{10.0, 990.0};  // Mean FPR 0.01.
  opts.beta = BetaPrior{1.0, 1.0};
  LtmIncremental inc(q, opts);
  // Source id 5 was never seen at training time.
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 5, true}}, 1, 6);
  FactTable facts;
  TruthEstimate est = inc.Score(facts, claims);
  EXPECT_NEAR(est.probability[0], 0.5 / (0.5 + 0.01), 1e-9);
}

TEST(LtmIncrementalTest, TruthPriorShiftsPosterior) {
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions skeptical;
  skeptical.beta = BetaPrior{1.0, 9.0};  // 10% prior truth rate.
  LtmIncremental inc(q, skeptical);
  ClaimGraph claims = ClaimGraph::FromClaims({{0, 0, true}}, 1, 2);
  FactTable facts;
  TruthEstimate est = inc.Score(facts, claims);
  const double expected = (1.0 * 0.95) / (1.0 * 0.95 + 9.0 * 0.01);
  EXPECT_NEAR(est.probability[0], expected, 1e-9);
}

TEST(LtmIncrementalTest, AccumulatedPriorsFoldCounts) {
  SourceQuality q = PerfectQualityForTwoSources();
  q.expected_counts[0] = {7.0, 3.0, 2.0, 8.0};  // n00, n01, n10, n11.
  LtmOptions opts;
  opts.alpha0 = BetaPrior{10.0, 1000.0};
  opts.alpha1 = BetaPrior{50.0, 50.0};
  LtmIncremental inc(q, opts);
  auto priors = inc.AccumulatedPriors();
  ASSERT_EQ(priors.alpha0.size(), 2u);
  EXPECT_DOUBLE_EQ(priors.alpha0[0].pos, 10.0 + 3.0);
  EXPECT_DOUBLE_EQ(priors.alpha0[0].neg, 1000.0 + 7.0);
  EXPECT_DOUBLE_EQ(priors.alpha1[0].pos, 50.0 + 8.0);
  EXPECT_DOUBLE_EQ(priors.alpha1[0].neg, 50.0 + 2.0);
}

TEST(LtmIncrementalTest, EstimateBeforeObserveIsFailedPrecondition) {
  LtmIncremental inc{LtmOptions()};
  auto est = inc.Estimate();
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LtmIncrementalTest, ObserveCachesEstimateAndAccumulatesEvidence) {
  SourceQuality q = PerfectQualityForTwoSources();
  LtmOptions opts;
  opts.beta = BetaPrior{1.0, 1.0};
  LtmIncremental inc(q, opts);

  Dataset chunk;
  chunk.raw.Add("e0", "a0", "s0");
  chunk.raw.Add("e0", "a1", "s1");
  chunk = Dataset::FromRaw("chunk", std::move(chunk.raw));
  ASSERT_TRUE(inc.Observe(chunk).ok());

  auto est = inc.Estimate();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->estimate.probability.size(), chunk.facts.NumFacts());
  // Run() on the same chunk is stateless and must agree with the cache.
  auto rerun = inc.Run(RunContext(), chunk.facts, chunk.graph);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->estimate.probability, est->estimate.probability);

  // The observed chunk's expected counts are folded into the priors: for
  // every source that claimed something, the prior mass strictly grows.
  UpdatedPriors before = LtmIncremental(q, opts).AccumulatedPriors();
  UpdatedPriors after = inc.AccumulatedPriors();
  ASSERT_EQ(after.alpha0.size(), before.alpha0.size());
  double before_mass = 0.0;
  double after_mass = 0.0;
  for (size_t s = 0; s < after.alpha0.size(); ++s) {
    before_mass += before.alpha0[s].Sum() + before.alpha1[s].Sum();
    after_mass += after.alpha0[s].Sum() + after.alpha1[s].Sum();
  }
  // Each claim contributes exactly one unit of expected count mass.
  EXPECT_NEAR(after_mass - before_mass, chunk.graph.NumClaims(), 1e-9);
}

TEST(LtmIncrementalTest, IsDiscoverableViaStreamingInterface) {
  LtmIncremental inc{LtmOptions()};
  StreamingTruthMethod* stream = &inc;
  EXPECT_EQ(stream->name(), "LTMinc");
}

// Integration: the paper's LTMinc protocol — batch-fit on the unlabeled
// portion, predict the held-out labeled entities incrementally — should be
// about as accurate as batch LTM on the same test facts (§6.2.1 reports no
// significant difference).
TEST(LtmIncrementalTest, MatchesBatchOnHeldOutMovies) {
  synth::MovieSimOptions gen;
  gen.num_movies = 1500;
  gen.seed = 5;
  Dataset ds = synth::GenerateMovieDataset(gen);
  auto test_entities = synth::SampleEntities(ds, 100, 42);
  auto [train, test] = ds.SplitByEntities(test_entities);

  LtmOptions opts = LtmOptions::MovieDataDefaults();
  opts.iterations = 80;
  opts.burnin = 20;
  opts.sample_gap = 2;

  LatentTruthModel batch(opts);
  SourceQuality quality;
  batch.RunWithQuality(train.graph, &quality);

  LtmIncremental inc(quality, opts);
  TruthEstimate inc_est = inc.Score(test.facts, test.graph);
  PointMetrics inc_m = EvaluateAtThreshold(inc_est.probability, test.labels,
                                           0.5);

  TruthEstimate batch_est = batch.Score(test.facts, test.graph);
  PointMetrics batch_m =
      EvaluateAtThreshold(batch_est.probability, test.labels, 0.5);

  EXPECT_GT(inc_m.accuracy(), 0.8) << inc_m.confusion.ToString();
  // LTMinc carries quality learned on the large train split; batch LTM
  // refit on the tiny 100-movie test set can only do worse or equal —
  // exactly why §5.4 recommends the incremental mode for small increments.
  EXPECT_GE(inc_m.accuracy(), batch_m.accuracy() - 0.03);
}

}  // namespace
}  // namespace ltm
