#include "common/failpoint.h"

#include <atomic>
#include <utility>

#include "common/mutex.h"

namespace ltm {

namespace {

std::atomic<bool> g_armed{false};
Mutex g_mutex;
std::function<Status(std::string_view)>& Handler() {
  static auto* handler = new std::function<Status(std::string_view)>();
  return *handler;
}

}  // namespace

Status FailpointCheck(std::string_view point) {
  if (!g_armed.load(std::memory_order_relaxed)) return Status::OK();
  MutexLock lock(g_mutex);
  if (!Handler()) return Status::OK();
  return Handler()(point);
}

void SetFailpointHandler(std::function<Status(std::string_view)> handler) {
  MutexLock lock(g_mutex);
  Handler() = std::move(handler);
  g_armed.store(static_cast<bool>(Handler()), std::memory_order_relaxed);
}

}  // namespace ltm
