#ifndef LTM_TRUTH_REGISTRY_H_
#define LTM_TRUTH_REGISTRY_H_

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "truth/method_spec.h"
#include "truth/options.h"
#include "truth/streaming_method.h"
#include "truth/truth_method.h"

namespace ltm {

/// Builds a method from its parsed spec options. `base_ltm` seeds the
/// LTM-family hyper-parameters (ignored by baselines); spec options are
/// applied on top of it. Factories validate their options and return
/// InvalidArgument for unknown keys or out-of-range values.
using MethodFactory = std::function<Result<std::unique_ptr<TruthMethod>>(
    const MethodOptions& options, const LtmOptions& base_ltm)>;

/// Process-wide registry of truth-finding methods. Built-in methods
/// self-register from their translation units via MethodRegistrar (see
/// LTM_REGISTER_TRUTH_METHOD); extensions and tests may Register at
/// runtime. Lookup is case-insensitive over canonical names and aliases.
class MethodRegistry {
 public:
  static MethodRegistry& Global();

  MethodRegistry() = default;
  /// The registry is process-global, self-referential via by_alias_
  /// indices, and mutex-owning; copies would silently fork the method
  /// namespace, so they are compile errors.
  MethodRegistry(const MethodRegistry&) = delete;
  MethodRegistry& operator=(const MethodRegistry&) = delete;
  MethodRegistry(MethodRegistry&&) = delete;
  MethodRegistry& operator=(MethodRegistry&&) = delete;

  /// Registers `factory` under `canonical_name` plus `aliases`.
  /// AlreadyExists when any name is taken.
  Status Register(std::string canonical_name,
                  std::vector<std::string> aliases, MethodFactory factory)
      LTM_EXCLUDES(mutex_);

  /// Removes a method and its aliases (tests). NotFound when absent.
  Status Unregister(const std::string& name) LTM_EXCLUDES(mutex_);

  /// Instantiates the method named by `spec`. NotFound for an unknown
  /// name; InvalidArgument for bad options.
  Result<std::unique_ptr<TruthMethod>> Create(
      const MethodSpec& spec, const LtmOptions& base_ltm = LtmOptions()) const
      LTM_EXCLUDES(mutex_);

  bool Contains(const std::string& name) const LTM_EXCLUDES(mutex_);

  /// Canonical registered names, sorted case-insensitively (deterministic
  /// regardless of registration order across translation units).
  std::vector<std::string> Names() const LTM_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string canonical;
    MethodFactory factory;
  };

  mutable Mutex mutex_;
  std::vector<Entry> entries_ LTM_GUARDED_BY(mutex_);
  /// lowercase name -> entry index
  std::map<std::string, size_t> by_alias_ LTM_GUARDED_BY(mutex_);
};

/// Static-initialization helper behind LTM_REGISTER_TRUTH_METHOD. A
/// registration failure (duplicate name) is a programming error; it is
/// logged at Error level and the duplicate is skipped.
struct MethodRegistrar {
  MethodRegistrar(const char* canonical_name,
                  std::initializer_list<const char*> aliases,
                  MethodFactory factory);
};

/// Registers a method from namespace scope of its own translation unit:
///
///   LTM_REGISTER_TRUTH_METHOD(
///       "Voting", {},
///       [](const MethodOptions& opts, const LtmOptions&)
///           -> Result<std::unique_ptr<TruthMethod>> { ... });
#define LTM_REGISTER_TRUTH_METHOD(canonical, ...)            \
  static const ::ltm::MethodRegistrar LTM_CONCAT_(           \
      ltm_method_registrar_, __COUNTER__)(canonical, __VA_ARGS__)

/// Creates a truth-finding method from a spec string: a paper name, case-
/// insensitive ("LTM", "LTMpos", "Voting", "TruthFinder", "HubAuthority",
/// "AvgLog", "Investment", "PooledInvestment", "3-Estimates", "LTMinc",
/// "StreamingLTM"), optionally parameterized —
/// "TruthFinder(rho=0.5,gamma=0.3)", "LTM(iterations=200,seed=7)".
/// `base_ltm` seeds LTM-family hyper-parameters below the spec overrides.
/// NotFound for an unknown name, InvalidArgument for a malformed spec or
/// bad option.
Result<std::unique_ptr<TruthMethod>> CreateMethod(
    const std::string& spec, const LtmOptions& base_ltm = LtmOptions());

/// Downcast to the streaming capability interface; nullptr when `method`
/// does not support the incremental protocol.
StreamingTruthMethod* AsStreaming(TruthMethod* method);

/// All batch methods compared in Table 7, in the paper's comparison order.
std::vector<std::unique_ptr<TruthMethod>> CreateAllMethods(
    const LtmOptions& base_ltm = LtmOptions());

/// Outcome of one spec from RunMethodsConcurrently: the spec as given and
/// either the method's TruthResult or the instantiation/run error.
struct MethodRunOutcome {
  std::string spec;
  Result<TruthResult> result;
};

/// Instantiates every spec and runs the resulting methods concurrently on
/// `pool` (ThreadPool::Shared() when null) — independent methods are
/// embarrassingly parallel, and a method that itself runs sharded (e.g.
/// "LTM(threads=4)") fans out over the same pool without deadlock (see
/// ThreadPool::ParallelFor). Outcomes are returned in spec order, so the
/// output is deterministic regardless of scheduling.
///
/// `ctx` is copied per method with its callbacks dropped: on_iteration /
/// on_progress / on_state are not required to be thread-safe and several
/// methods would race on them. cancel, deadline_seconds (measured from
/// each method's own Run entry), seed, collect_trace and with_quality are
/// honored.
std::vector<MethodRunOutcome> RunMethodsConcurrently(
    const std::vector<std::string>& specs, const RunContext& ctx,
    const FactTable& facts, const ClaimGraph& graph,
    const LtmOptions& base_ltm = LtmOptions(), ThreadPool* pool = nullptr);

/// Every name accepted by CreateMethod (canonical spellings), sorted.
std::vector<std::string> MethodNames();

/// The nine batch methods of Table 7 in the paper's comparison order — the
/// subset of MethodNames() that CreateAllMethods instantiates.
std::vector<std::string> BatchMethodNames();

}  // namespace ltm

#endif  // LTM_TRUTH_REGISTRY_H_
