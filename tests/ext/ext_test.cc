#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "ext/adversarial.h"
#include "ext/gaussian_ltm.h"
#include "ext/multi_attribute.h"
#include "ext/streaming.h"
#include "synth/book_simulator.h"
#include "synth/labeling.h"
#include "synth/movie_simulator.h"
#include "test_util.h"

namespace ltm {
namespace {

LtmOptions FastOptions() {
  LtmOptions opts = LtmOptions::MovieDataDefaults();
  opts.iterations = 60;
  opts.burnin = 15;
  opts.sample_gap = 2;
  return opts;
}

// ---------------------------------------------------------------- streaming

TEST(StreamingTest, BootstrapThenIncrementalPredictions) {
  synth::MovieSimOptions gen;
  gen.num_movies = 800;
  gen.seed = 3;
  Dataset ds = synth::GenerateMovieDataset(gen);

  // 3 chunks of 80 entities each stream in after a bootstrap on the rest.
  auto chunk_entities = synth::SampleEntities(ds, 240, 11);
  std::vector<EntityId> c1(chunk_entities.begin(), chunk_entities.begin() + 80);
  std::vector<EntityId> c2(chunk_entities.begin() + 80,
                           chunk_entities.begin() + 160);
  std::vector<EntityId> c3(chunk_entities.begin() + 160, chunk_entities.end());

  auto [rest, chunks_all] = ds.SplitByEntities(chunk_entities);
  auto [chunk12, chunk3] = chunks_all.SplitByEntities([&] {
    std::vector<EntityId> ids;
    for (EntityId e = 0; e < chunks_all.raw.NumEntities(); ++e) {
      // Map back by name membership in c3.
      std::string name(chunks_all.raw.entities().Get(e));
      for (EntityId orig : c3) {
        if (name == ds.raw.entities().Get(orig)) {
          ids.push_back(e);
          break;
        }
      }
    }
    return ids;
  }());

  ext::StreamingOptions opts;
  opts.ltm = FastOptions();
  opts.refit_every_chunks = 2;
  ext::StreamingPipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Bootstrap(rest).ok());
  EXPECT_EQ(pipeline.quality().NumSources(), ds.raw.NumSources());

  auto r1 = pipeline.IngestChunk(chunk12);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->estimate.probability.size(), chunk12.facts.NumFacts());
  PointMetrics m = EvaluateAtThreshold(r1->estimate.probability,
                                       chunk12.labels, 0.5);
  EXPECT_GT(m.accuracy(), 0.75) << m.confusion.ToString();

  auto r2 = pipeline.IngestChunk(chunk3);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->refit);  // Second chunk triggers the periodic refit.
  EXPECT_EQ(pipeline.num_chunks_ingested(), 2u);

  // The same pipeline through the streaming capability interface.
  StreamingTruthMethod& stream = pipeline;
  EXPECT_EQ(stream.name(), "StreamingLTM");
  auto last = stream.Estimate();
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_EQ(last->estimate.probability.size(), chunk3.facts.NumFacts());
  UpdatedPriors priors = stream.AccumulatedPriors();
  EXPECT_EQ(priors.alpha0.size(), ds.raw.NumSources());
  for (const BetaPrior& a0 : priors.alpha0) {
    EXPECT_GE(a0.Sum(), opts.ltm.alpha0.Sum());
  }
}

TEST(StreamingTest, ColdStartBootstrapsFromFirstChunk) {
  synth::MovieSimOptions gen;
  gen.num_movies = 300;
  Dataset ds = synth::GenerateMovieDataset(gen);
  ext::StreamingOptions opts;
  opts.ltm = FastOptions();
  ext::StreamingPipeline pipeline(opts);
  auto r = pipeline.IngestChunk(ds);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->refit);
  EXPECT_EQ(r->estimate.probability.size(), ds.facts.NumFacts());
}

TEST(StreamingTest, AccumulatedPriorsGrowWithObservedChunks) {
  // Contract: priors reflect the batch read-off plus every chunk observed
  // since, even when refits are disabled entirely.
  synth::MovieSimOptions gen;
  gen.num_movies = 200;
  Dataset ds = synth::GenerateMovieDataset(gen);
  ext::StreamingOptions opts;
  opts.ltm = FastOptions();
  opts.refit_every_chunks = 0;  // Never refit.
  ext::StreamingPipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Bootstrap(ds).ok());
  auto mass = [](const UpdatedPriors& p) {
    double m = 0.0;
    for (const BetaPrior& a : p.alpha0) m += a.Sum();
    for (const BetaPrior& a : p.alpha1) m += a.Sum();
    return m;
  };
  const double before = mass(pipeline.AccumulatedPriors());
  ASSERT_TRUE(pipeline.Observe(ds).ok());
  const double after = mass(pipeline.AccumulatedPriors());
  // Each observed claim contributes one unit of expected count mass.
  EXPECT_NEAR(after - before, ds.graph.NumClaims(), 1e-6);
}

// -------------------------------------------------------------- adversarial

TEST(AdversarialTest, DetectsInjectedAdversary) {
  // Start from a clean book world, then add a malicious source that
  // floods 300 books with wrong authors.
  synth::BookSimOptions gen;
  gen.num_books = 300;
  gen.num_sources = 60;
  gen.seed = 17;
  Dataset clean = synth::GenerateBookDataset(gen);

  RawDatabase poisoned;
  for (const std::string& s : clean.raw.sources().strings()) {
    poisoned.mutable_sources().Intern(s);
  }
  for (const RawRow& row : clean.raw.rows()) {
    poisoned.Add(clean.raw.entities().Get(row.entity),
                 clean.raw.attributes().Get(row.attribute),
                 clean.raw.sources().Get(row.source));
  }
  const SourceId evil = static_cast<SourceId>(poisoned.NumSources());
  for (size_t b = 0; b < 300; ++b) {
    poisoned.Add("book_" + std::to_string(b),
                 "author_evil_" + std::to_string(b), "evil-source");
  }
  Dataset ds = Dataset::FromRaw("poisoned", std::move(poisoned));

  ext::AdversarialOptions opts;
  opts.ltm = LtmOptions::BookDataDefaults();
  opts.ltm.iterations = 60;
  opts.ltm.burnin = 15;
  opts.ltm.sample_gap = 2;
  opts.min_precision = 0.5;
  opts.min_specificity = 0.5;
  auto filtered = ext::RunAdversarialFilter(ds.facts, ds.graph, opts);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  const ext::AdversarialResult& result = *filtered;

  bool evil_removed = false;
  for (SourceId s : result.removed_sources) {
    if (s == evil) evil_removed = true;
  }
  EXPECT_TRUE(evil_removed);
  EXPECT_GE(result.rounds, 2);

  // After filtering, evil facts (support gone, only denials remain) must
  // be accepted far less often than by an unfiltered LTM fit.
  auto count_evil_true = [&](const std::vector<double>& probs) {
    size_t n = 0;
    for (FactId f = 0; f < ds.facts.NumFacts(); ++f) {
      std::string attr(ds.raw.attributes().Get(ds.facts.fact(f).attribute));
      if (attr.rfind("author_evil_", 0) == 0 && probs[f] >= 0.5) ++n;
    }
    return n;
  };
  LatentTruthModel unfiltered(opts.ltm);
  TruthEstimate raw_est = unfiltered.Score(ds.facts, ds.graph);
  const size_t evil_true_after = count_evil_true(result.estimate.probability);
  const size_t evil_true_before = count_evil_true(raw_est.probability);
  EXPECT_LT(evil_true_after, 5u);
  EXPECT_LE(evil_true_after, evil_true_before);
}

TEST(AdversarialTest, CleanDataRemovesNothing) {
  synth::BookSimOptions gen;
  gen.num_books = 150;
  gen.num_sources = 40;
  gen.fp_rate_sloppy = 0.02;  // No truly bad sources.
  gen.sloppy_fraction = 0.0;
  Dataset ds = synth::GenerateBookDataset(gen);
  ext::AdversarialOptions opts;
  opts.ltm = LtmOptions::BookDataDefaults();
  opts.ltm.iterations = 50;
  opts.ltm.burnin = 10;
  opts.ltm.sample_gap = 2;
  auto filtered = ext::RunAdversarialFilter(ds.facts, ds.graph, opts);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_TRUE(filtered->removed_sources.empty());
  EXPECT_EQ(filtered->rounds, 1);
}

// ------------------------------------------------------------ gaussian ltm

TEST(GaussianLtmTest, RecoversTruthWithHeteroscedasticSources) {
  Rng rng(23);
  const size_t num_facts = 200;
  const size_t num_sources = 8;
  std::vector<double> truth(num_facts);
  for (auto& t : truth) t = rng.Uniform(0.0, 100.0);
  // Half the sources are precise (sigma 0.5), half noisy (sigma 8).
  std::vector<double> sigma(num_sources);
  for (size_t s = 0; s < num_sources; ++s) sigma[s] = s < 4 ? 0.5 : 8.0;
  std::vector<ext::ValueClaim> claims;
  for (uint32_t f = 0; f < num_facts; ++f) {
    for (uint32_t s = 0; s < num_sources; ++s) {
      claims.push_back({f, s, rng.Normal(truth[f], sigma[s])});
    }
  }
  auto result = ext::RunGaussianLtm(claims, num_facts, num_sources);
  ASSERT_TRUE(result.ok());
  // Precise sources identified.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_LT(result->source_sigma[s], result->source_sigma[s + 4]);
  }
  // Truth recovered to well under the noisy sigma.
  double max_err = 0.0;
  for (size_t f = 0; f < num_facts; ++f) {
    max_err = std::max(max_err, std::fabs(result->truth[f] - truth[f]));
  }
  EXPECT_LT(max_err, 2.0);
}

TEST(GaussianLtmTest, BeatsPlainAveraging) {
  Rng rng(29);
  const size_t num_facts = 300;
  std::vector<double> truth(num_facts);
  for (auto& t : truth) t = rng.Uniform(-50.0, 50.0);
  std::vector<ext::ValueClaim> claims;
  for (uint32_t f = 0; f < num_facts; ++f) {
    claims.push_back({f, 0, rng.Normal(truth[f], 0.2)});
    claims.push_back({f, 1, rng.Normal(truth[f], 10.0)});
    claims.push_back({f, 2, rng.Normal(truth[f], 10.0)});
  }
  auto result = ext::RunGaussianLtm(claims, num_facts, 3);
  ASSERT_TRUE(result.ok());
  double em_sse = 0.0;
  double avg_sse = 0.0;
  std::vector<double> sums(num_facts, 0.0);
  for (const auto& c : claims) sums[c.fact] += c.value;
  for (size_t f = 0; f < num_facts; ++f) {
    const double em_err = result->truth[f] - truth[f];
    const double avg_err = sums[f] / 3.0 - truth[f];
    em_sse += em_err * em_err;
    avg_sse += avg_err * avg_err;
  }
  EXPECT_LT(em_sse, avg_sse * 0.5);
}

TEST(GaussianLtmTest, RejectsBadInput) {
  EXPECT_FALSE(ext::RunGaussianLtm({{5, 0, 1.0}}, 2, 1).ok());  // fact OOB
  EXPECT_FALSE(ext::RunGaussianLtm({{0, 5, 1.0}}, 1, 2).ok());  // source OOB
  EXPECT_FALSE(
      ext::RunGaussianLtm({{0, 0, std::nan("")}}, 1, 1).ok());  // non-finite
  ext::GaussianLtmOptions bad;
  bad.prior_variance = 0.0;
  EXPECT_FALSE(ext::RunGaussianLtm({{0, 0, 1.0}}, 1, 1, bad).ok());
}

TEST(GaussianLtmTest, EmptyClaimsYieldPriors) {
  auto result = ext::RunGaussianLtm({}, 3, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->truth.size(), 3u);
  EXPECT_DOUBLE_EQ(result->source_sigma[0], 1.0);  // sqrt(prior_variance).
}

// --------------------------------------------------------- multi-attribute

TEST(MultiAttributeTest, FitsAllTypesAndSharesPrior) {
  synth::MovieSimOptions movies;
  movies.num_movies = 400;
  movies.seed = 31;
  synth::BookSimOptions books;
  books.num_books = 200;
  books.num_sources = 50;
  books.seed = 37;
  std::vector<Dataset> types;
  types.push_back(synth::GenerateMovieDataset(movies));
  types.push_back(synth::GenerateBookDataset(books));

  ext::MultiAttributeOptions opts;
  opts.ltm = FastOptions();
  opts.coupling_rounds = 2;
  ext::MultiAttributeResult result = ext::RunMultiAttributeLtm(types, opts);

  ASSERT_EQ(result.per_type.size(), 2u);
  for (size_t i = 0; i < types.size(); ++i) {
    EXPECT_EQ(result.per_type[i].estimate.probability.size(),
              types[i].facts.NumFacts());
    PointMetrics m = EvaluateAtThreshold(
        result.per_type[i].estimate.probability, types[i].labels, 0.5);
    EXPECT_GT(m.accuracy(), 0.7) << types[i].name;
  }
  // The shared prior moved away from the initial configuration toward the
  // data (mean sensitivity of these worlds is below the 0.5 default).
  EXPECT_GT(result.shared_alpha1.Sum(), 0.0);
  EXPECT_NE(result.shared_alpha1.Mean(), opts.ltm.alpha1.Mean());
}

TEST(MultiAttributeTest, SingleRoundEqualsIndependentFits) {
  synth::MovieSimOptions movies;
  movies.num_movies = 200;
  std::vector<Dataset> types;
  types.push_back(synth::GenerateMovieDataset(movies));
  ext::MultiAttributeOptions opts;
  opts.ltm = FastOptions();
  opts.coupling_rounds = 1;
  ext::MultiAttributeResult result = ext::RunMultiAttributeLtm(types, opts);
  // Prior unchanged after a single round.
  EXPECT_DOUBLE_EQ(result.shared_alpha0.pos, opts.ltm.alpha0.pos);
  EXPECT_DOUBLE_EQ(result.shared_alpha0.neg, opts.ltm.alpha0.neg);
}

}  // namespace
}  // namespace ltm
