#include "eval/regression.h"

#include <cassert>
#include <cmath>

namespace ltm {

LinearFit FitLeastSquares(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0.0) {
    fit.r_squared = 1.0;  // All y equal and perfectly predicted.
    return fit;
  }
  double ss_res = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = 1.0 - ss_res / syy;
  return fit;
}

}  // namespace ltm
