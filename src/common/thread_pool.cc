#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

namespace ltm {

namespace {

/// Shared state of one ParallelFor call. Runners (worker tasks and the
/// calling thread) pull chunk indices from `cursor` until it is exhausted
/// or `stopped` is raised; the caller waits until every runner task it
/// submitted has exited.
struct ParallelForState {
  size_t begin = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  size_t range_end = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  const std::function<Status()>* stop_check = nullptr;

  std::atomic<size_t> cursor{0};
  std::atomic<bool> stopped{false};

  std::mutex mutex;
  std::condition_variable done;
  int live_runners = 0;      ///< submitted worker tasks not yet exited
  Status first_error;        ///< first non-OK stop_check result
  std::exception_ptr first_exception;

  /// Executes chunks until exhaustion or stop. Never throws.
  void RunLoop() {
    for (;;) {
      if (stopped.load(std::memory_order_acquire)) return;
      if (*stop_check != nullptr) {
        Status st = (*stop_check)();
        if (!st.ok()) {
          Stop(std::move(st), nullptr);
          return;
        }
      }
      const size_t chunk = cursor.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const size_t lo = begin + chunk * grain;
      const size_t hi = std::min(range_end, lo + grain);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        Stop(Status::OK(), std::current_exception());
        return;
      }
    }
  }

  void Stop(Status error, std::exception_ptr exception) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (first_error.ok() && !error.ok()) first_error = std::move(error);
      if (!first_exception && exception) first_exception = exception;
    }
    stopped.store(true, std::memory_order_release);
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(0, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

std::shared_future<Status> ThreadPool::SubmitWithStatus(
    std::function<Status()> job) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::shared_future<Status> future = promise->get_future().share();
  auto run = [promise, job = std::move(job)] {
    try {
      promise->set_value(job());
    } catch (const std::exception& e) {
      promise->set_value(
          Status::Internal(std::string("background job threw: ") + e.what()));
    } catch (...) {
      promise->set_value(Status::Internal("background job threw"));
    }
  };
  if (workers_.empty()) {
    run();  // no workers to hand off to; run inline so the future resolves
  } else {
    Submit(std::move(run));
  }
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const std::function<void(size_t, size_t)>& fn,
                               const std::function<Status()>& stop_check) {
  if (begin >= end) return Status::OK();
  grain = std::max<size_t>(1, grain);

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->grain = grain;
  state->num_chunks = (end - begin + grain - 1) / grain;
  state->range_end = end;
  state->fn = &fn;
  state->stop_check = &stop_check;

  // One runner task per worker, capped by the chunk count — the calling
  // thread is always a runner too, so a zero-worker pool still makes
  // progress (sequentially).
  const size_t helper_count =
      std::min<size_t>(workers_.size(), state->num_chunks);
  state->live_runners = static_cast<int>(helper_count);
  for (size_t i = 0; i < helper_count; ++i) {
    Submit([state] {
      state->RunLoop();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->live_runners == 0) state->done.notify_all();
    });
  }

  state->RunLoop();

  // Barrier: wait for the submitted runner tasks to exit — but keep
  // draining the pool's queue while doing so. Without this, nesting
  // deadlocks: every worker blocks in some inner ParallelFor waiting for
  // helper tasks that only a free worker could execute. A queued task we
  // pick up here either belongs to a (possibly different) ParallelFor —
  // it drains chunks and exits — or is a plain Submit task; either way
  // the system keeps making progress. Any runner not in the queue is
  // executing on some thread and will notify `done` when it exits, so the
  // short timed wait below only bounds the window of that two-lock race.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->live_runners == 0) break;
    }
    if (!TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done.wait_for(lock, std::chrono::milliseconds(1),
                           [&state] { return state->live_runners == 0; });
      if (state->live_runners == 0) break;
    }
  }
  if (state->first_exception) std::rethrow_exception(state->first_exception);
  return state->first_error;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: callers may use the pool during static
  // destruction, and joining threads at exit is a portability hazard.
  static ThreadPool* shared = new ThreadPool(HardwareConcurrency());
  return *shared;
}

}  // namespace ltm
