#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace ltm {
namespace obs {

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose, like MetricsRegistry::Global(): spans may still
  // finish on background threads during process exit.
  static TraceRecorder* const global = new TraceRecorder();
  return *global;
}

void TraceRecorder::Enable(size_t per_thread_capacity) {
  capacity_.store(per_thread_capacity, std::memory_order_relaxed);
  t0_ns_.store(SteadyNowNanos(), std::memory_order_relaxed);
  // The session bump must be visible before enabled_ flips: a recording
  // thread that sees enabled==true must also see the new session id, or
  // it would append into a stale ring image.
  session_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_release);
}

uint64_t TraceRecorder::NowMicros() const {
  const int64_t delta =
      SteadyNowNanos() - t0_ns_.load(std::memory_order_relaxed);
  return delta > 0 ? static_cast<uint64_t>(delta) / 1000 : 0;
}

TraceRecorder::Ring* TraceRecorder::ThisThreadRing() {
  struct Cached {
    TraceRecorder* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Cached cached;
  if (cached.owner == this) return cached.ring;
  auto ring = std::make_shared<Ring>();
  ring->tid = static_cast<uint32_t>(ThreadIndex());
  {
    MutexLock lock(mu_);
    rings_.push_back(ring);
  }
  cached.owner = this;
  cached.ring = ring.get();
  return cached.ring;
}

void TraceRecorder::Record(const char* name, uint64_t ts_us,
                           uint64_t dur_us) {
  if (!enabled()) return;
  Ring* ring = ThisThreadRing();
  const uint64_t session = session_.load(std::memory_order_acquire);
  const size_t capacity = capacity_.load(std::memory_order_relaxed);
  MutexLock lock(ring->mu);
  if (ring->session != session) {
    // First record after a (re-)Enable: lazily drop the old session's
    // spans instead of making Enable() visit every ring.
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
    ring->session = session;
  }
  if (capacity == 0) {
    ++ring->dropped;
    return;
  }
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = ring->tid;
  if (ring->events.size() < capacity) {
    ring->events.push_back(event);
  } else {
    // Full: overwrite the oldest span and account for it.
    ring->events[ring->next] = event;
    ring->next = (ring->next + 1) % capacity;
    ++ring->dropped;
  }
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<TraceEvent> out;
  const uint64_t session = session_.load(std::memory_order_acquire);
  MutexLock lock(mu_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    if (ring->session != session) continue;
    // Once wrapped, the oldest retained span sits at the overwrite
    // cursor; emit in age order so ties in ts_us stay stable.
    const size_t n = ring->events.size();
    for (size_t i = 0; i < n; ++i) {
      out.push_back(ring->events[(ring->next + i) % n]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

uint64_t TraceRecorder::DroppedSpans() const {
  const uint64_t session = session_.load(std::memory_order_acquire);
  uint64_t dropped = 0;
  MutexLock lock(mu_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    if (ring->session == session) dropped += ring->dropped;
  }
  return dropped;
}

std::string TraceRecorder::TraceJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n{\"name\":\"");
    out.append(event.name);  // span names are static identifiers
    out.append("\",\"cat\":\"ltm\",\"ph\":\"X\",\"ts\":");
    out.append(std::to_string(event.ts_us));
    out.append(",\"dur\":");
    out.append(std::to_string(event.dur_us));
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(event.tid));
    out.append("}");
  }
  out.append("\n]}\n");
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  const std::string json = TraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ltm
