#include "store/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.h"

namespace ltm {
namespace store {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::vector<WalRecord> SampleRecords() {
    std::vector<WalRecord> records;
    for (int i = 0; i < 8; ++i) {
      WalRecord r;
      r.entity = "entity-" + std::string(static_cast<size_t>(i) + 1, 'e');
      r.attribute = "attr" + std::to_string(i * 7);
      r.source = i % 2 == 0 ? "imdb" : "a-much-longer-source-name";
      records.push_back(r);
    }
    return records;
  }

  std::string dir_;
};

TEST_F(WalTest, RoundTrip) {
  const std::string path = Path("roundtrip.log");
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalRecord& r : records) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
    EXPECT_EQ(writer->appended_records(), records.size());
  }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->records, records);
}

TEST_F(WalTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = Path("reopen.log");
  const std::vector<WalRecord> records = SampleRecords();
  for (const WalRecord& r : records) {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(r).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, records);
}

TEST_F(WalTest, EmptyWalHasHeaderAndNoRecords) {
  const std::string path = Path("empty.log");
  { ASSERT_TRUE(WalWriter::Open(path).ok()); }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->torn_tail);
  EXPECT_EQ(replay->valid_bytes, kWalHeaderSize);
}

TEST_F(WalTest, MissingFileIsIOError) {
  auto replay = ReplayWal(Path("missing.log"));
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIOError);
}

TEST_F(WalTest, RejectsBadMagic) {
  const std::string path = Path("badmagic.log");
  { ASSERT_TRUE(WalWriter::Open(path).ok()); }
  std::string bytes = ReadFile(path);
  bytes[0] = 'X';
  WriteFile(path, bytes);
  auto replay = ReplayWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(replay.status().message().find("magic"), std::string::npos);
}

TEST_F(WalTest, RejectsUnsupportedVersion) {
  const std::string path = Path("badversion.log");
  { ASSERT_TRUE(WalWriter::Open(path).ok()); }
  std::string bytes = ReadFile(path);
  bytes[4] = static_cast<char>(kWalVersion + 1);
  WriteFile(path, bytes);
  auto replay = ReplayWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("version"), std::string::npos);
}

TEST_F(WalTest, ChecksumCorruptionEndsTheScanAtTheCorruptRecord) {
  const std::string path = Path("corrupt.log");
  const std::vector<WalRecord> records = SampleRecords();
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : records) ASSERT_TRUE(writer->Append(r).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  std::string bytes = ReadFile(path);
  // Flip a byte roughly in the middle: every record before the corrupt
  // one survives, nothing after it is trusted.
  bytes[bytes.size() / 2] ^= 0x5a;
  WriteFile(path, bytes);
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_LT(replay->records.size(), records.size());
  for (size_t i = 0; i < replay->records.size(); ++i) {
    EXPECT_EQ(replay->records[i], records[i]) << "record " << i;
  }
}

// The torn-tail property (satellite): truncating the log at EVERY byte
// offset must never crash recovery and must always yield a valid record
// prefix — exactly the records whose bytes fully fit the truncated file.
TEST_F(WalTest, TornTailPropertyEveryTruncationYieldsARecordPrefix) {
  const std::string path = Path("torn.log");
  const std::vector<WalRecord> records = SampleRecords();
  std::vector<uint64_t> record_ends;  // byte offset after each record
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : records) {
      ASSERT_TRUE(writer->Append(r).ok());
      ASSERT_TRUE(writer->Sync().ok());
      record_ends.push_back(std::filesystem::file_size(path));
    }
  }
  const std::string bytes = ReadFile(path);
  ASSERT_EQ(record_ends.back(), bytes.size());

  const std::string torn = Path("torn_cut.log");
  for (size_t keep = 0; keep <= bytes.size(); ++keep) {
    WriteFile(torn, bytes.substr(0, keep));
    auto replay = ReplayWal(torn);
    ASSERT_TRUE(replay.ok()) << "kept " << keep
                             << " bytes: " << replay.status().ToString();
    // Expected record count: records fully contained in [0, keep).
    size_t expected = 0;
    while (expected < record_ends.size() && record_ends[expected] <= keep) {
      ++expected;
    }
    ASSERT_EQ(replay->records.size(), expected) << "kept " << keep;
    for (size_t i = 0; i < expected; ++i) {
      ASSERT_EQ(replay->records[i], records[i])
          << "kept " << keep << ", record " << i;
    }
    // valid_bytes always points at the end of the intact prefix, and the
    // torn flag fires exactly when trailing bytes were dropped.
    const uint64_t expected_valid =
        expected == 0 ? (keep >= kWalHeaderSize ? kWalHeaderSize : 0)
                      : record_ends[expected - 1];
    ASSERT_EQ(replay->valid_bytes, expected_valid) << "kept " << keep;
    ASSERT_EQ(replay->torn_tail, replay->valid_bytes != keep)
        << "kept " << keep;
  }
}

// Regression: Open on a file with a torn (partial) header must return a
// clean error — it used to double-close the FILE* on this path.
TEST_F(WalTest, OpenRejectsATornHeaderWithoutCrashing) {
  const std::string path = Path("tornheader.log");
  WriteFile(path, std::string(kWalMagic, 3));  // 3 bytes, mid-header
  auto writer = WalWriter::Open(path);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(writer.status().message().find("torn header"), std::string::npos);
}

TEST_F(WalTest, ObservationBitRoundTrips) {
  const std::string path = Path("obs.log");
  WalRecord negative;
  negative.entity = "e";
  negative.attribute = "a";
  negative.source = "s";
  negative.observation = 0;  // reserved but representable in the format
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(negative).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].observation, 0);
}

// --- in-memory reader (the fuzzer entry point) ---------------------------

std::string WalHeaderBytes() {
  std::string header(kWalMagic, 4);
  uint32_t version = kWalVersion;
  header.append(reinterpret_cast<const char*>(&version), sizeof(version));
  return header;
}

template <typename T>
std::string EncodeLe(T v) {
  std::string out(sizeof(v), '\0');
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

TEST_F(WalTest, ReplayBytesMatchesReplayFromFile) {
  const std::string path = Path("equiv.wal");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : SampleRecords()) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto from_file = ReplayWal(path);
  auto from_bytes = ReplayWalBytes(ReadFile(path), path);
  ASSERT_TRUE(from_file.ok());
  ASSERT_TRUE(from_bytes.ok());
  EXPECT_EQ(from_file->valid_bytes, from_bytes->valid_bytes);
  EXPECT_EQ(from_file->torn_tail, from_bytes->torn_tail);
  ASSERT_EQ(from_file->records.size(), from_bytes->records.size());
  for (size_t i = 0; i < from_file->records.size(); ++i) {
    EXPECT_EQ(from_file->records[i].entity, from_bytes->records[i].entity);
  }
}

// Regression (satellite): a record-size field claiming ~4 GB over a
// 4-byte tail must be treated as a torn tail by comparing the size
// against the bytes actually remaining — never by allocating or reading
// 4 GB.
TEST_F(WalTest, RecordSizeAllocationBombIsATornTail) {
  const std::string bytes = WalHeaderBytes() +
                            EncodeLe<uint32_t>(0xFFFFFFF0u) +  // record size
                            EncodeLe<uint64_t>(0) +            // checksum
                            std::string(4, '\0');              // actual tail
  auto replay = ReplayWalBytes(bytes, "bomb");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, kWalHeaderSize);
  EXPECT_TRUE(replay->torn_tail);
}

// A correctly-checksummed payload whose *inner* string length overruns
// the payload stops the scan at that record (the bounds-checked
// ByteReader refuses the read); nothing is over-allocated.
TEST_F(WalTest, InnerStringLengthBombEndsTheScan) {
  std::string payload;
  payload += EncodeLe<uint8_t>(1);           // observation
  payload += EncodeLe<uint32_t>(0xFFFFu);    // entity length: a lie
  payload += "ab";                           // only two bytes follow
  const std::string bytes = WalHeaderBytes() +
                            EncodeLe<uint32_t>(
                                static_cast<uint32_t>(payload.size())) +
                            EncodeLe<uint64_t>(Fnv1a64(payload)) + payload;
  auto replay = ReplayWalBytes(bytes, "bomb");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, kWalHeaderSize);
  EXPECT_TRUE(replay->torn_tail);
}

// --- version 2: router-assigned ingest sequence numbers ------------------

TEST_F(WalTest, V2PersistsIngestSequenceNumbers) {
  const std::string path = Path("seq.log");
  std::vector<WalRecord> records = SampleRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].seq = 1000 + i * 3;  // sparse: a router skips seqs freely
  }
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer->version(), kWalVersion);
    for (const WalRecord& r : records) ASSERT_TRUE(writer->Append(r).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, records);  // seqs round-trip exactly
}

// A version-1 log (no seq field) replays with every seq reported as 0,
// and a writer appending to it keeps the file's own format — a log is
// never mixed-version.
TEST_F(WalTest, LegacyV1LogsReplayWithZeroSeqsAndStayV1) {
  const std::string path = Path("v1.log");
  const WalRecord r1{"harry", "radcliffe", "imdb", 1, 0};
  const WalRecord r2{"harry", "watson", "netflix", 1, 0};
  std::string file(kWalMagic, 4);
  file += EncodeLe<uint32_t>(kWalLegacyVersion);
  for (const WalRecord& r : {r1, r2}) {
    std::string payload;
    payload += EncodeLe<uint8_t>(r.observation);  // v1: no seq field
    for (const std::string* s : {&r.entity, &r.attribute, &r.source}) {
      payload += EncodeLe<uint32_t>(static_cast<uint32_t>(s->size()));
      payload += *s;
    }
    file += EncodeLe<uint32_t>(static_cast<uint32_t>(payload.size()));
    file += EncodeLe<uint64_t>(Fnv1a64(payload));
    file += payload;
  }
  WriteFile(path, file);

  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0], r1);
  EXPECT_EQ(replay->records[1], r2);

  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer->version(), kWalLegacyVersion);
    WalRecord r3{"harry", "grint", "imdb", 1, 77};
    ASSERT_TRUE(writer->Append(r3).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[2].entity, "harry");
  EXPECT_EQ(replay->records[2].attribute, "grint");
  EXPECT_EQ(replay->records[2].seq, 0u);  // v1 cannot carry the seq
}

}  // namespace
}  // namespace store
}  // namespace ltm
