#include "data/snapshot.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/fs_util.h"
#include "common/hash.h"

namespace ltm {

namespace {

constexpr size_t kHeaderSize = 24;

Status RequireLittleEndianHost() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::FailedPrecondition(
        "snapshot I/O is little-endian only; this host is big-endian");
  }
  return Status::OK();
}

/// Appends fixed-width integers and length-prefixed blobs to a byte
/// buffer. On a little-endian host the in-memory representation is the
/// on-disk format, so writes are plain memcpys.
class PayloadWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI8(int8_t v) { PutRaw(&v, sizeof(v)); }

  void PutString(std::string_view s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutU32Array(const std::vector<uint32_t>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  const std::string& bytes() const { return bytes_; }

 private:
  void PutRaw(const void* data, size_t size) {
    bytes_.append(static_cast<const char*>(data), size);
  }

  std::string bytes_;
};

/// Bounds-checked cursor over the payload. Every getter fails with
/// InvalidArgument instead of reading past the end, so a truncated
/// payload (that somehow passed the size check) cannot crash the loader.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint32_t> GetU32() {
    uint32_t v = 0;
    LTM_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v = 0;
    LTM_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int8_t> GetI8() {
    int8_t v = 0;
    LTM_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }

  Result<std::string> GetString() {
    LTM_ASSIGN_OR_RETURN(const uint64_t len, GetU64());
    if (len > Remaining()) return Truncated("string");
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  Result<std::vector<uint32_t>> GetU32Array() {
    LTM_ASSIGN_OR_RETURN(const uint64_t count, GetU64());
    if (count > Remaining() / sizeof(uint32_t)) return Truncated("u32 array");
    std::vector<uint32_t> v(count);
    if (count > 0) {
      std::memcpy(v.data(), data_ + pos_, count * sizeof(uint32_t));
      pos_ += count * sizeof(uint32_t);
    }
    return v;
  }

  size_t Remaining() const { return size_ - pos_; }

 private:
  Status GetRaw(void* out, size_t size) {
    if (size > Remaining()) {
      return Status::InvalidArgument(
          "corrupt snapshot: payload truncated at byte " +
          std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        std::string("corrupt snapshot: truncated ") + what + " at byte " +
        std::to_string(pos_));
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutInterner(PayloadWriter* w, const StringInterner& interner) {
  w->PutU64(interner.size());
  for (const std::string& s : interner.strings()) {
    w->PutString(s);
  }
}

Result<std::vector<std::string>> GetInterner(PayloadReader* r) {
  LTM_ASSIGN_OR_RETURN(const uint64_t count, r->GetU64());
  std::vector<std::string> strings;
  // Every string costs at least its 8-byte length prefix, so a count the
  // remaining payload cannot possibly hold is corruption. Checked BEFORE
  // the reserve: a forged count must never size an allocation (a 10 MB
  // file claiming 2^40 strings would otherwise reserve ~32 TB of
  // std::string headers before the first parse failure).
  if (count > r->Remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "corrupt snapshot: interner claims more strings than payload bytes");
  }
  strings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LTM_ASSIGN_OR_RETURN(std::string s, r->GetString());
    strings.push_back(std::move(s));
  }
  return strings;
}

}  // namespace

Status SaveDatasetSnapshot(const Dataset& dataset, const std::string& path) {
  LTM_RETURN_IF_ERROR(RequireLittleEndianHost());

  PayloadWriter payload;
  payload.PutString(dataset.name);

  PutInterner(&payload, dataset.raw.entities());
  PutInterner(&payload, dataset.raw.attributes());
  PutInterner(&payload, dataset.raw.sources());

  payload.PutU64(dataset.raw.NumRows());
  for (const RawRow& row : dataset.raw.rows()) {
    payload.PutU32(row.entity);
    payload.PutU32(row.attribute);
    payload.PutU32(row.source);
  }

  payload.PutU64(dataset.facts.NumFacts());
  for (const Fact& fact : dataset.facts.facts()) {
    payload.PutU32(fact.entity);
    payload.PutU32(fact.attribute);
  }

  payload.PutU64(dataset.graph.NumSources());
  payload.PutU32Array(dataset.graph.fact_offsets());
  payload.PutU32Array(dataset.graph.fact_claims());

  payload.PutU64(dataset.labels.NumFacts());
  for (FactId f = 0; f < dataset.labels.NumFacts(); ++f) {
    const auto label = dataset.labels.Get(f);
    payload.PutI8(!label.has_value() ? int8_t{-1}
                                     : (*label ? int8_t{1} : int8_t{0}));
  }

  const std::string& bytes = payload.bytes();
  char header[kHeaderSize];
  std::memcpy(header, kSnapshotMagic, 4);
  const uint32_t version = kSnapshotVersion;
  std::memcpy(header + 4, &version, 4);
  const uint64_t payload_size = bytes.size();
  std::memcpy(header + 8, &payload_size, 8);
  const uint64_t checksum = Fnv1a64(bytes.data(), bytes.size());
  std::memcpy(header + 16, &checksum, 8);

  // Crash-safe: temp write + fsync + atomic rename. An interrupted save
  // can never corrupt an existing snapshot at `path`. Header and payload
  // are passed separately so the (potentially large) payload is not
  // copied a second time just to prepend 24 bytes.
  return AtomicWriteFile(path, std::string_view(header, kHeaderSize), bytes);
}

Result<Dataset> LoadDatasetSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open snapshot: " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("snapshot read failed: " + path);
  return LoadDatasetSnapshotFromBytes(file, path);
}

Result<Dataset> LoadDatasetSnapshotFromBytes(std::string_view file,
                                             const std::string& path) {
  LTM_RETURN_IF_ERROR(RequireLittleEndianHost());

  if (file.size() < kHeaderSize) {
    return Status::InvalidArgument("corrupt snapshot: file shorter than the " +
                                   std::to_string(kHeaderSize) +
                                   "-byte header: " + path);
  }
  if (std::memcmp(file.data(), kSnapshotMagic, 4) != 0) {
    return Status::InvalidArgument(
        "corrupt snapshot: bad magic (not an LTMS snapshot): " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, file.data() + 4, 4);
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        "): " + path);
  }
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + 8, 8);
  const uint64_t actual_size = file.size() - kHeaderSize;
  if (payload_size < actual_size) {
    return Status::InvalidArgument(
        "corrupt snapshot: " + std::to_string(actual_size - payload_size) +
        " trailing garbage bytes after the " + std::to_string(payload_size) +
        "-byte checksummed payload: " + path);
  }
  if (payload_size > actual_size) {
    return Status::InvalidArgument(
        "corrupt snapshot: truncated — header promises " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(actual_size) + ": " + path);
  }
  uint64_t expected_checksum = 0;
  std::memcpy(&expected_checksum, file.data() + 16, 8);
  const uint64_t actual_checksum =
      Fnv1a64(file.data() + kHeaderSize, payload_size);
  if (actual_checksum != expected_checksum) {
    return Status::InvalidArgument("corrupt snapshot: checksum mismatch: " +
                                   path);
  }

  PayloadReader r(file.data() + kHeaderSize, payload_size);
  Dataset ds;
  LTM_ASSIGN_OR_RETURN(ds.name, r.GetString());

  LTM_ASSIGN_OR_RETURN(const std::vector<std::string> entities,
                       GetInterner(&r));
  LTM_ASSIGN_OR_RETURN(const std::vector<std::string> attributes,
                       GetInterner(&r));
  LTM_ASSIGN_OR_RETURN(const std::vector<std::string> sources,
                       GetInterner(&r));
  for (const std::string& s : entities) ds.raw.mutable_entities().Intern(s);
  for (const std::string& s : attributes) {
    ds.raw.mutable_attributes().Intern(s);
  }
  for (const std::string& s : sources) ds.raw.mutable_sources().Intern(s);
  if (ds.raw.NumEntities() != entities.size() ||
      ds.raw.NumAttributes() != attributes.size() ||
      ds.raw.NumSources() != sources.size()) {
    return Status::InvalidArgument(
        "corrupt snapshot: duplicate strings in an interner section");
  }

  LTM_ASSIGN_OR_RETURN(const uint64_t num_rows, r.GetU64());
  if (num_rows > r.Remaining() / (3 * sizeof(uint32_t))) {
    return Status::InvalidArgument(
        "corrupt snapshot: row section larger than payload");
  }
  for (uint64_t i = 0; i < num_rows; ++i) {
    LTM_ASSIGN_OR_RETURN(const uint32_t e, r.GetU32());
    LTM_ASSIGN_OR_RETURN(const uint32_t a, r.GetU32());
    LTM_ASSIGN_OR_RETURN(const uint32_t s, r.GetU32());
    if (e >= entities.size() || a >= attributes.size() ||
        s >= sources.size()) {
      return Status::InvalidArgument(
          "corrupt snapshot: raw row " + std::to_string(i) +
          " references an id outside the interners");
    }
    ds.raw.AddRow(e, a, s);
  }

  LTM_ASSIGN_OR_RETURN(const uint64_t num_facts, r.GetU64());
  if (num_facts > r.Remaining() / (2 * sizeof(uint32_t))) {
    return Status::InvalidArgument(
        "corrupt snapshot: fact section larger than payload");
  }
  std::vector<Fact> fact_list;
  fact_list.reserve(num_facts);
  for (uint64_t i = 0; i < num_facts; ++i) {
    LTM_ASSIGN_OR_RETURN(const uint32_t e, r.GetU32());
    LTM_ASSIGN_OR_RETURN(const uint32_t a, r.GetU32());
    if (e >= entities.size() || a >= attributes.size()) {
      return Status::InvalidArgument(
          "corrupt snapshot: fact " + std::to_string(i) +
          " references an id outside the interners");
    }
    fact_list.push_back(Fact{e, a});
  }
  ds.facts = FactTable::FromFactList(fact_list);
  if (ds.facts.NumFacts() != num_facts) {
    return Status::InvalidArgument(
        "corrupt snapshot: duplicate (entity, attribute) pairs in the fact "
        "section");
  }

  LTM_ASSIGN_OR_RETURN(const uint64_t num_graph_sources, r.GetU64());
  if (num_graph_sources != sources.size()) {
    return Status::InvalidArgument(
        "corrupt snapshot: graph has " + std::to_string(num_graph_sources) +
        " sources, interner has " + std::to_string(sources.size()));
  }
  LTM_ASSIGN_OR_RETURN(std::vector<uint32_t> fact_offsets, r.GetU32Array());
  LTM_ASSIGN_OR_RETURN(std::vector<uint32_t> fact_claims, r.GetU32Array());
  // A default-constructed (zero-fact) graph serializes an empty offset
  // array; normalize to the canonical {0} before the shape check.
  if (fact_offsets.empty()) fact_offsets.push_back(0);
  if (fact_offsets.size() != num_facts + 1) {
    return Status::InvalidArgument(
        "corrupt snapshot: graph covers " +
        std::to_string(fact_offsets.size() - 1) + " facts, fact table has " +
        std::to_string(num_facts));
  }
  LTM_ASSIGN_OR_RETURN(
      ds.graph, ClaimGraph::FromCsr(std::move(fact_offsets),
                                    std::move(fact_claims),
                                    num_graph_sources));

  LTM_ASSIGN_OR_RETURN(const uint64_t num_labels, r.GetU64());
  if (num_labels != num_facts) {
    return Status::InvalidArgument(
        "corrupt snapshot: " + std::to_string(num_labels) + " labels for " +
        std::to_string(num_facts) + " facts");
  }
  ds.labels = TruthLabels(num_labels);
  for (uint64_t f = 0; f < num_labels; ++f) {
    LTM_ASSIGN_OR_RETURN(const int8_t v, r.GetI8());
    if (v < -1 || v > 1) {
      return Status::InvalidArgument(
          "corrupt snapshot: label " + std::to_string(f) + " has value " +
          std::to_string(v) + " (want -1/0/1)");
    }
    if (v >= 0) ds.labels.Set(static_cast<FactId>(f), v == 1);
  }

  if (r.Remaining() != 0) {
    return Status::InvalidArgument(
        "corrupt snapshot: " + std::to_string(r.Remaining()) +
        " trailing bytes after the label section");
  }
  return ds;
}

Status Dataset::SaveSnapshot(const std::string& path) const {
  return SaveDatasetSnapshot(*this, path);
}

Result<Dataset> Dataset::LoadSnapshot(const std::string& path) {
  return LoadDatasetSnapshot(path);
}

}  // namespace ltm
