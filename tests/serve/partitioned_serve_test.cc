#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ext/streaming.h"
#include "serve/serve_options.h"
#include "serve/serve_session.h"
#include "store/partitioned_store.h"
#include "store/truth_store.h"
#include "test_util.h"
#include "truth/ltm.h"

namespace ltm {
namespace serve {
namespace {

namespace fs = std::filesystem;

/// Serving against an entity-range partitioned store. The boundaries
/// "g" / "p" carve three partitions; the fixture's claim table spreads
/// entities across all of them so every query path crosses the router.
class ServeSessionPartitionedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/partitioned_serve_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
    raw_ = FruitBasket();
  }

  /// Entities in all three ranges: [-inf,g), [g,p), [p,+inf). Ingested
  /// deliberately OUT of lexicographic order, so a range read that
  /// merely concatenates materialization (= ingest) order is caught.
  static RawDatabase FruitBasket() {
    RawDatabase raw;
    for (const char* e : {"zucchini", "grape", "apple", "peach", "banana",
                          "kiwi", "fig", "plum", "mango"}) {
      raw.Add(e, std::string(e) + "-color", "s1");
      raw.Add(e, std::string(e) + "-color", "s2");
      raw.Add(e, std::string(e) + "-size", "s2");
      raw.Add(e, std::string(e) + "-size", "s3");
    }
    return raw;
  }

  ext::StreamingOptions Options() {
    ext::StreamingOptions options;
    options.ltm = LtmOptions::ScaledDefaults(raw_.NumRows());
    options.ltm.iterations = 40;
    options.ltm.burnin = 10;
    options.ltm.seed = 5;
    options.ltm.threads = 1;
    options.ltm.kernel = LtmKernel::kReference;
    options.refit_every_chunks = 0;
    return options;
  }

  /// Opens a 3-way partitioned store at `name`, ingests raw_, and
  /// bootstraps a pipeline + session over it.
  void BootstrapPartitioned() {
    store::PartitionedStoreOptions opts;
    opts.partitions = 3;
    opts.initial_boundaries = {"g", "p"};
    auto store = store::PartitionedTruthStore::Open(root_ + "/parted", opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    ASSERT_TRUE(store_->AppendRaw(raw_).ok());
    ASSERT_TRUE(store_->Flush().ok());
    pipeline_ = std::make_unique<ext::StreamingPipeline>(Options());
    ASSERT_TRUE(pipeline_->BootstrapFromStore(store_.get()).ok());
    auto session = ServeSession::Create(pipeline_.get(), ServeOptions());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    session_ = std::move(*session);
  }

  std::string root_;
  RawDatabase raw_;
  std::unique_ptr<store::PartitionedTruthStore> store_;
  std::unique_ptr<ext::StreamingPipeline> pipeline_;
  std::unique_ptr<ServeSession> session_;
};

// Regression for the cross-partition range read: materialization visits
// partitions in range order but rows within each in ingest order; the
// API contract is GLOBAL lexicographic entity order. The queried range
// straddles both partition boundaries.
TEST_F(ServeSessionPartitionedTest, QueryEntityRangeGloballyOrdered) {
  BootstrapPartitioned();
  ASSERT_EQ(store_->num_partitions(), 3u);

  auto served = session_->QueryEntityRange("banana", "plum");
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // Everything in [banana, plum] and nothing else — entities from all
  // three partitions.
  std::vector<std::string> expected = {"banana", "fig",   "grape", "kiwi",
                                       "mango",  "peach", "plum"};
  std::vector<std::string> got_entities;
  for (const ServedFact& fact : *served) {
    if (got_entities.empty() || got_entities.back() != fact.entity) {
      got_entities.push_back(fact.entity);
    }
  }
  EXPECT_EQ(got_entities, expected);  // sorted AND deduplicated-adjacent
  ASSERT_EQ(served->size(), expected.size() * 2);  // two attributes each
  for (size_t i = 1; i < served->size(); ++i) {
    EXPECT_LE((*served)[i - 1].entity, (*served)[i].entity)
        << "out of order at " << i;
  }

  // Range posteriors agree with point reads (which route one partition).
  for (const ServedFact& fact : *served) {
    auto point = session_->Query({fact.entity, fact.attribute});
    ASSERT_TRUE(point.ok());
    EXPECT_EQ(*point, fact.posterior) << fact.entity << "/" << fact.attribute;
  }
}

// Point queries through the router serve the same bits a single-store
// session serves for identical data — partitioning is invisible to the
// serving surface.
TEST_F(ServeSessionPartitionedTest, QueriesMatchSingleStoreSession) {
  BootstrapPartitioned();

  auto single = store::TruthStore::Open(root_ + "/single");
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE((*single)->AppendRaw(raw_).ok());
  ASSERT_TRUE((*single)->Flush().ok());
  ext::StreamingPipeline single_pipeline(Options());
  ASSERT_TRUE(single_pipeline.BootstrapFromStore(single->get()).ok());
  auto single_session =
      ServeSession::Create(&single_pipeline, ServeOptions());
  ASSERT_TRUE(single_session.ok());

  for (const char* e : {"apple", "grape", "mango", "zucchini"}) {
    const FactRef ref{e, std::string(e) + "-color"};
    auto parted = session_->Query(ref);
    auto plain = (*single_session)->Query(ref);
    ASSERT_TRUE(parted.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(*parted, *plain) << e;  // bit-identical
  }
}

// AcquireSnapshot pins every partition at one consistent vector epoch:
// reads stay frozen while appends land in other partitions.
TEST_F(ServeSessionPartitionedTest, SnapshotPinsAllPartitionsConsistently) {
  BootstrapPartitioned();

  std::vector<FactRef> probes = {{"apple", "apple-color"},
                                 {"kiwi", "kiwi-size"},
                                 {"zucchini", "zucchini-color"}};
  const auto snapshot = session_->AcquireSnapshot();
  const uint64_t pinned_epoch = snapshot->epoch();
  auto baseline = snapshot->QueryBatch(probes);
  ASSERT_TRUE(baseline.ok());

  // New evidence in every partition advances the composite epoch...
  RawDatabase more;
  more.Add("avocado", "avocado-color", "s1");
  more.Add("lime", "lime-color", "s1");
  more.Add("tomato", "tomato-color", "s1");
  ASSERT_TRUE(store_->AppendRaw(more).ok());
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_GT(store_->epoch(), pinned_epoch);

  // ...but the pinned view is bit-stable.
  EXPECT_EQ(snapshot->epoch(), pinned_epoch);
  auto again = snapshot->QueryBatch(probes);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *baseline);
}

// The partitions spec key drives the serving store's layout end to end.
TEST_F(ServeSessionPartitionedTest, PartitionsSpecKeyCarvesTheStore) {
  auto options = ParseServeSpec("serve(partitions=3,block_cache_mb=4)");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->partitions, 3u);

  store::PartitionedStoreOptions popts;
  popts.store = options->ApplyToStore(popts.store);
  popts.partitions = options->partitions;
  auto store = store::OpenTruthStoreAuto(root_ + "/spec", popts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_partitions(), 3u);

  EXPECT_NE(options->ToSpecString().find("partitions=3"), std::string::npos);
  EXPECT_FALSE(ParseServeSpec("serve(partitions=0)").ok());
  EXPECT_FALSE(ParseServeSpec("serve(partitions=257)").ok());
}

}  // namespace
}  // namespace serve
}  // namespace ltm
