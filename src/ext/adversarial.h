#ifndef LTM_EXT_ADVERSARIAL_H_
#define LTM_EXT_ADVERSARIAL_H_

#include <vector>

#include "data/claim_graph.h"
#include "data/fact_table.h"
#include "truth/ltm.h"
#include "truth/options.h"

namespace ltm {
namespace ext {

/// Controls for adversarial-source filtering (paper §7, "Adversarial
/// sources"): iteratively run LTM, drop sources whose inferred specificity
/// or precision falls below thresholds (their data is mostly false), and
/// re-run on the surviving claims.
struct AdversarialOptions {
  LtmOptions ltm;
  double min_specificity = 0.5;
  double min_precision = 0.5;
  int max_rounds = 5;
};

/// Result of the filtering loop.
struct AdversarialResult {
  /// Final truth estimate over the original fact ids.
  TruthEstimate estimate;
  /// Final quality (indexed by original SourceId; removed sources keep the
  /// quality from the round they were removed in).
  SourceQuality quality;
  /// Sources removed as adversarial, in removal order.
  std::vector<SourceId> removed_sources;
  int rounds = 0;
  /// Total wall-clock time across all rounds in seconds.
  double wall_seconds = 0.0;
};

/// Runs the iterative filter. Claims of removed sources are deleted
/// between rounds (facts keep their ids; facts left with no claims score
/// at the prior mean). The context's cancel/deadline interrupt between
/// LTM refits (Cancelled / DeadlineExceeded); its on_progress callback
/// reports completed rounds.
Result<AdversarialResult> RunAdversarialFilter(
    const FactTable& facts, const ClaimGraph& graph,
    const AdversarialOptions& options, const RunContext& ctx = RunContext());

}  // namespace ext
}  // namespace ltm

#endif  // LTM_EXT_ADVERSARIAL_H_
