#ifndef LTM_DATA_CLAIM_GRAPH_H_
#define LTM_DATA_CLAIM_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/claim_table.h"
#include "data/types.h"

namespace ltm {

/// The canonical columnar inference substrate: a packed CSR claim graph.
///
/// Every truth-finding method in the library iterates this structure.
/// ClaimTable is only the ingestion-time builder that materializes claims
/// (paper Definition 3) and hands off here; after Build() the 12-byte
/// {fact, source, observation} structs are gone from the hot path.
///
/// Each adjacency entry is a single uint32 packing the neighbor id with
/// the observation bit —
///
///   fact side:   (source << 1) | observation, in ClaimTable claim order
///   source side: (fact << 1) | observation, grouped by source
///
/// so one Gibbs conditional (or one fixed-point accumulation pass) streams
/// a contiguous run of 4-byte words — 3x less memory traffic than the
/// struct walk — and the per-source pass walks its own contiguous run.
/// Derived stats the methods need (per-fact/per-source degrees and
/// positive-claim counts; the fact offsets double as the claim-count
/// prefix sum) are computed once at build time.
///
/// Ids must stay below 2^31 so the shifted pack cannot overflow;
/// ValidateIdBounds makes that limit an explicit checked failure.
///
/// Immutable after construction; spans remain valid for the graph's
/// lifetime.
class ClaimGraph {
 public:
  ClaimGraph() = default;

  /// OK iff every fact and source id fits the 31-bit packed id space
  /// (ids are dense, so the counts bound the ids). Build() CHECK-fails on
  /// a violation; snapshot loading surfaces it as a Status.
  static Status ValidateIdBounds(size_t num_facts, size_t num_sources);

  /// Flattens `table`. Per-fact adjacency order is exactly the
  /// ClaimTable's claim order (positives before negatives, then by
  /// source), so algorithms ported from ClaimTable iterate identical
  /// sequences and reproduce identical floating-point sums.
  /// Aborts with a clear message when ValidateIdBounds fails.
  static ClaimGraph Build(const ClaimTable& table);

  /// Builds a graph directly from an explicit claim list (synthetic
  /// generators, filtered re-builds). Equivalent to
  /// Build(ClaimTable::FromClaims(...)): claims are sorted fact-major
  /// (positives before negatives, then by source) and duplicate
  /// (fact, source) pairs keep the first occurrence.
  static ClaimGraph FromClaims(std::vector<Claim> claims, size_t num_facts,
                               size_t num_sources);

  /// Reassembles a graph from a serialized fact-side CSR (snapshot load).
  /// Validates the invariants — offsets monotone from 0 to
  /// fact_claims.size(), every packed source id below `num_sources`, id
  /// bounds — and rebuilds the source side and derived stats. Returns
  /// InvalidArgument on any violation instead of trusting the input.
  static Result<ClaimGraph> FromCsr(std::vector<uint32_t> fact_offsets,
                                    std::vector<uint32_t> fact_claims,
                                    size_t num_sources);

  size_t NumFacts() const {
    return fact_offsets_.empty() ? 0 : fact_offsets_.size() - 1;
  }
  size_t NumSources() const { return num_sources_; }
  size_t NumClaims() const { return fact_claims_.size(); }
  size_t NumPositiveClaims() const { return num_positive_; }
  size_t NumNegativeClaims() const {
    return fact_claims_.size() - num_positive_;
  }

  /// Unpack helpers for adjacency entries.
  static constexpr uint32_t PackedId(uint32_t entry) { return entry >> 1; }
  static constexpr int PackedObs(uint32_t entry) {
    return static_cast<int>(entry & 1u);
  }

  /// Packed (source << 1 | obs) entries of fact `f`'s claims (C_f).
  std::span<const uint32_t> FactClaims(FactId f) const {
    return std::span<const uint32_t>(fact_claims_.data() + fact_offsets_[f],
                                     fact_offsets_[f + 1] - fact_offsets_[f]);
  }

  /// Packed (fact << 1 | obs) entries of source `s`'s claims, in
  /// fact-major order (identical to the order ClaimTable's by-source
  /// index visited, so per-source sums stay bit-identical).
  std::span<const uint32_t> SourceClaims(SourceId s) const {
    return std::span<const uint32_t>(
        source_claims_.data() + source_offsets_[s],
        source_offsets_[s + 1] - source_offsets_[s]);
  }

  uint32_t FactDegree(FactId f) const {
    return fact_offsets_[f + 1] - fact_offsets_[f];
  }
  /// Number of positive claims on fact `f` (|S_f| restricted to
  /// asserters). Positives precede negatives within FactClaims(f).
  uint32_t FactPositiveCount(FactId f) const { return fact_pos_counts_[f]; }

  uint32_t SourceDegree(SourceId s) const {
    return source_offsets_[s + 1] - source_offsets_[s];
  }
  /// Number of positive claims made by source `s`.
  uint32_t SourcePositiveCount(SourceId s) const {
    return source_pos_counts_[s];
  }

  /// A copy of this graph with all negative claims removed (same facts
  /// and sources, per-fact order preserved). Used by the LTMpos ablation
  /// and positive-only baselines.
  ClaimGraph PositiveOnly() const;

  /// Partitions facts into `num_shards` contiguous ranges balanced by
  /// claim count (the sweep's unit of work, since Eq. 2 is O(|C_f|)).
  /// Returns `num_shards + 1` non-decreasing boundaries with front() == 0
  /// and back() == NumFacts(); shard k owns [b[k], b[k+1]). Deterministic
  /// for a given graph and shard count — the parallel sampler's
  /// reproducibility rests on this.
  std::vector<uint32_t> PartitionFacts(int num_shards) const;

  /// Raw fact-side CSR arrays, the snapshot serialization payload.
  const std::vector<uint32_t>& fact_offsets() const { return fact_offsets_; }
  const std::vector<uint32_t>& fact_claims() const { return fact_claims_; }

 private:
  /// Rebuilds source_offsets_/source_claims_ and all derived stats from
  /// the fact side. The single code path shared by every builder.
  void BuildSourceSideAndStats();

  std::vector<uint32_t> fact_offsets_;      // size NumFacts()+1
  std::vector<uint32_t> fact_claims_;       // packed source|obs, fact-major
  std::vector<uint32_t> fact_pos_counts_;   // positives per fact
  std::vector<uint32_t> source_offsets_;    // size NumSources()+1
  std::vector<uint32_t> source_claims_;     // packed fact|obs, source-major
  std::vector<uint32_t> source_pos_counts_; // positives per source
  size_t num_sources_ = 0;
  size_t num_positive_ = 0;
};

}  // namespace ltm

#endif  // LTM_DATA_CLAIM_GRAPH_H_
