#ifndef LTM_OBS_HISTOGRAM_H_
#define LTM_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace ltm {
namespace obs {

/// Lock-free log2-bucketed histogram (microsecond samples). Record() is
/// two relaxed fetch_adds — one bucket count, one exact running sum — so
/// it is cheap enough for every query, every WAL append, every Gibbs
/// sweep. Percentile read-offs interpolate within the winning
/// power-of-two bucket, so reported tails are approximate (within one
/// bucket, i.e. ~2x at worst); the mean is exact because the sum is kept
/// outside the buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // covers up to ~2^39 us (~6 days)

  struct Percentiles {
    uint64_t count = 0;
    uint64_t sum_us = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
  };

  void Record(uint64_t micros) {
    int bucket = 0;
    while (bucket + 1 < kBuckets && (uint64_t{1} << (bucket + 1)) <= micros) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Concurrent-safe read-off. Buckets are read one by one (relaxed), so
  /// under concurrent Records the snapshot is approximate — fine for
  /// monitoring counters.
  Percentiles Snapshot() const {
    std::array<uint64_t, kBuckets> counts;
    const uint64_t total = LoadCounts(&counts);
    Percentiles out;
    out.count = total;
    out.sum_us = sum_.load(std::memory_order_relaxed);
    if (total == 0) return out;
    out.mean_us = static_cast<double>(out.sum_us) / static_cast<double>(total);
    out.p50_us = PercentileFrom(counts, total, 0.50);
    out.p90_us = PercentileFrom(counts, total, 0.90);
    out.p99_us = PercentileFrom(counts, total, 0.99);
    return out;
  }

  /// Single-quantile read-off (q in [0, 1]); 0 when the histogram is
  /// empty. Exposed so tests can probe the q=1.0 clamp directly.
  double Percentile(double q) const {
    std::array<uint64_t, kBuckets> counts;
    const uint64_t total = LoadCounts(&counts);
    if (total == 0) return 0.0;
    return PercentileFrom(counts, total, q);
  }

  uint64_t Count() const {
    std::array<uint64_t, kBuckets> counts;
    return LoadCounts(&counts);
  }

  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Raw bucket access for exposition rendering (RenderText).
  uint64_t BucketCount(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Exclusive upper edge of bucket b: bucket b holds samples in
  /// [2^b, 2^(b+1)), except bucket 0 which also holds 0.
  static constexpr uint64_t BucketUpperBound(int b) {
    return uint64_t{1} << (b + 1);
  }

 private:
  uint64_t LoadCounts(std::array<uint64_t, kBuckets>* counts) const {
    uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      (*counts)[b] = buckets_[b].load(std::memory_order_relaxed);
      total += (*counts)[b];
    }
    return total;
  }

  static double PercentileFrom(const std::array<uint64_t, kBuckets>& counts,
                               uint64_t total, double q) {
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    int last_nonempty = -1;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts[b] == 0) continue;
      last_nonempty = b;
      const double next = seen + static_cast<double>(counts[b]);
      if (next >= target) {
        // Linear interpolation inside bucket [2^b, 2^(b+1)).
        const double lo = static_cast<double>(uint64_t{1} << b);
        const double frac =
            (target - seen) / static_cast<double>(counts[b]);
        return lo * (1.0 + frac);
      }
      seen = next;
    }
    // Float rounding can push `target` past every bucket (q very close
    // to 1). Clamp to the upper edge of the highest non-empty bucket —
    // never the 2^39 end-of-range sentinel the old fallthrough returned.
    if (last_nonempty >= 0) {
      return static_cast<double>(BucketUpperBound(last_nonempty));
    }
    return 0.0;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace ltm

#endif  // LTM_OBS_HISTOGRAM_H_
