// Fuzz target for the partition-map parser — the file that tells a
// partitioned store which child directories exist and which entity
// range each one owns. It is read on every open, over whatever a crash
// (possibly mid-rename) left on disk. Contract under test:
// ParsePartitionMapFromBytes returns a PartitionMap or a non-OK Status
// for EVERY byte string; it never crashes, never reads out of bounds,
// and never sizes an allocation from an unvalidated count or length
// field. Maps that parse are additionally pushed through
// ValidatePartitionMap, which must reject overlaps/gaps without UB.
//
// Built with `-fsanitize=fuzzer,address,undefined` under Clang
// (-DBUILD_FUZZERS=ON); under other compilers the same TU links against
// fuzz/driver_main.cc and replays the checked-in corpus as a regression
// test.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "store/partition_map.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto map = ltm::store::ParsePartitionMapFromBytes(bytes, "fuzz-input");
  if (map.ok()) {
    // Touch every parsed field so ASan sees any dangling internals, and
    // run validation — it must classify, not crash, on weird ranges.
    size_t total = 0;
    for (const auto& entry : map->entries) {
      total += entry.dir.size() + entry.lower.size() + entry.upper.size();
      total += entry.Contains(entry.lower) ? 1 : 0;
    }
    (void)total;
    (void)ltm::store::ValidatePartitionMap(*map);
    if (!map->entries.empty()) {
      (void)ltm::store::FindPartition(*map, map->entries.front().lower);
    }
  }
  return 0;
}
