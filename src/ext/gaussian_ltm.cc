#include "ext/gaussian_ltm.h"

#include <cmath>
#include <string>

namespace ltm {
namespace ext {

Result<GaussianLtmResult> RunGaussianLtm(const std::vector<ValueClaim>& claims,
                                         size_t num_facts, size_t num_sources,
                                         const GaussianLtmOptions& options) {
  for (const ValueClaim& c : claims) {
    if (c.fact >= num_facts || c.source >= num_sources) {
      return Status::InvalidArgument(
          "value claim references fact " + std::to_string(c.fact) +
          " / source " + std::to_string(c.source) + " out of range");
    }
    if (!std::isfinite(c.value)) {
      return Status::InvalidArgument("value claim with non-finite value");
    }
  }
  if (options.prior_strength <= 0.0 || options.prior_variance <= 0.0) {
    return Status::InvalidArgument("Gaussian priors must be positive");
  }

  GaussianLtmResult result;
  result.truth.assign(num_facts, 0.0);
  result.source_sigma.assign(num_sources, std::sqrt(options.prior_variance));

  // Initialize truth with per-fact means.
  std::vector<double> sum(num_facts, 0.0);
  std::vector<double> cnt(num_facts, 0.0);
  for (const ValueClaim& c : claims) {
    sum[c.fact] += c.value;
    cnt[c.fact] += 1.0;
  }
  for (size_t f = 0; f < num_facts; ++f) {
    if (cnt[f] > 0.0) result.truth[f] = sum[f] / cnt[f];
  }

  std::vector<double> weight_sum(num_facts);
  std::vector<double> weighted_value(num_facts);
  std::vector<double> sq_err(num_sources);
  std::vector<double> src_cnt(num_sources);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Variance step first: with uniform prior sigmas the first weighted
    // mean would equal the plain mean and spuriously trigger convergence;
    // estimating variances against the current truth breaks the tie.
    std::fill(sq_err.begin(), sq_err.end(), 0.0);
    std::fill(src_cnt.begin(), src_cnt.end(), 0.0);
    for (const ValueClaim& c : claims) {
      const double e = c.value - result.truth[c.fact];
      sq_err[c.source] += e * e;
      src_cnt[c.source] += 1.0;
    }
    for (size_t s = 0; s < num_sources; ++s) {
      const double var =
          (sq_err[s] + options.prior_strength * options.prior_variance) /
          (src_cnt[s] + options.prior_strength);
      result.source_sigma[s] = std::sqrt(var);
    }

    // Truth step: precision-weighted mean per fact.
    std::fill(weight_sum.begin(), weight_sum.end(), 0.0);
    std::fill(weighted_value.begin(), weighted_value.end(), 0.0);
    for (const ValueClaim& c : claims) {
      const double var =
          result.source_sigma[c.source] * result.source_sigma[c.source];
      const double w = 1.0 / var;
      weight_sum[c.fact] += w;
      weighted_value[c.fact] += w * c.value;
    }
    double max_delta = 0.0;
    for (size_t f = 0; f < num_facts; ++f) {
      if (weight_sum[f] <= 0.0) continue;
      const double mu = weighted_value[f] / weight_sum[f];
      max_delta = std::max(max_delta, std::fabs(mu - result.truth[f]));
      result.truth[f] = mu;
    }

    if (max_delta < options.tolerance) break;
  }
  return result;
}

}  // namespace ext
}  // namespace ltm
