#include "data/interner.h"

#include <gtest/gtest.h>

namespace ltm {
namespace {

TEST(InternerTest, DenseIdsInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, ReinternReturnsSameId) {
  StringInterner interner;
  uint32_t a = interner.Intern("x");
  uint32_t b = interner.Intern("y");
  EXPECT_EQ(interner.Intern("x"), a);
  EXPECT_EQ(interner.Intern("y"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, GetRoundTrips) {
  StringInterner interner;
  uint32_t id = interner.Intern("hello world");
  EXPECT_EQ(interner.Get(id), "hello world");
}

TEST(InternerTest, FindOnlyReturnsExisting) {
  StringInterner interner;
  interner.Intern("present");
  auto hit = interner.Find("present");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0u);
  EXPECT_FALSE(interner.Find("absent").has_value());
  EXPECT_EQ(interner.size(), 1u);  // Find must not intern.
}

TEST(InternerTest, EmptyStringIsValidKey) {
  StringInterner interner;
  uint32_t id = interner.Intern("");
  EXPECT_EQ(interner.Get(id), "");
  EXPECT_TRUE(interner.Find("").has_value());
}

TEST(InternerTest, ManyStringsStayConsistent) {
  StringInterner interner;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Intern("key" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Get(i), "key" + std::to_string(i));
  }
}

}  // namespace
}  // namespace ltm
