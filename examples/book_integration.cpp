// Book-author integration scenario: the paper's motivating data
// integration workload (§1) at full scale — hundreds of online book
// sellers with wildly varying completeness, rare-but-real wrong authors,
// and multi-valued author attributes.
//
// Demonstrates: simulating (or loading) a raw database, running LTM and a
// baseline, evaluating against a labeled sample, and exporting resolved
// truth to TSV for a downstream consumer.

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "data/tsv_io.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "synth/book_simulator.h"
#include "synth/labeling.h"
#include "truth/ltm.h"
#include "truth/registry.h"

int main(int argc, char** argv) {
  // Optionally load a real raw database from TSV instead of simulating.
  ltm::Dataset ds;
  if (argc > 1) {
    auto loaded = ltm::LoadRawDatabaseFromTsv(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    ds = ltm::Dataset::FromRaw(argv[1], std::move(loaded).value());
  } else {
    ltm::synth::BookSimOptions gen;  // abebooks-scale defaults
    ds = ltm::synth::GenerateBookDataset(gen);
  }
  std::printf("%s\n\n", ds.SummaryString().c_str());

  // A 100-book labeled sample, as in the paper's evaluation protocol.
  ltm::TruthLabels eval_labels = ltm::synth::LabelsForEntities(
      ds, ltm::synth::SampleEntities(ds, 100, 100));

  // LTM with the paper's book priors: alpha0 = (10, 1000).
  ltm::LtmOptions opts = ltm::LtmOptions::BookDataDefaults();
  opts.iterations = 100;
  opts.burnin = 20;
  opts.sample_gap = 4;
  ltm::LatentTruthModel model(opts);
  ltm::SourceQuality quality;
  ltm::TruthEstimate ltm_est = model.RunWithQuality(ds.graph, &quality);

  // Compare with voting at threshold 0.5.
  auto voting = ltm::CreateMethod("Voting");
  ltm::TruthEstimate vote_est = (*voting)->Score(ds.facts, ds.graph);

  ltm::TablePrinter table(
      {"Method", "Precision", "Recall", "Accuracy", "F1"});
  for (const auto& [name, est] :
       {std::pair<std::string, const ltm::TruthEstimate*>{"LTM", &ltm_est},
        {"Voting", &vote_est}}) {
    ltm::PointMetrics m =
        ltm::EvaluateAtThreshold(est->probability, eval_labels, 0.5);
    table.AddRow(name, {m.precision(), m.recall(), m.accuracy(), m.f1()});
  }
  table.Print();

  // Show the most and least reliable sellers by sensitivity.
  std::printf("\nMost complete sellers (top sensitivity):\n");
  std::vector<std::pair<double, ltm::SourceId>> ranked;
  for (ltm::SourceId s = 0; s < ds.raw.NumSources(); ++s) {
    // Only rank sellers with enough claims to judge.
    if (ds.graph.SourceDegree(s) >= 50) {
      ranked.emplace_back(quality.sensitivity[s], s);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    std::printf("  %-12s sensitivity=%.3f specificity=%.3f\n",
                std::string(ds.raw.sources().Get(ranked[i].second)).c_str(),
                quality.sensitivity[ranked[i].second],
                quality.specificity[ranked[i].second]);
  }

  // Export the resolved records.
  const std::string out = "resolved_book_authors.tsv";
  ltm::Status st = ltm::WriteTruthToTsv(ds, ltm_est.probability, 0.5, out);
  if (!st.ok()) {
    std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nResolved truth written to %s\n", out.c_str());
  return 0;
}
