#ifndef LTM_DATA_SNAPSHOT_H_
#define LTM_DATA_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace ltm {

/// Versioned binary snapshot of a Dataset, so benches and serving-style
/// repeat runs skip TSV parsing and claim materialization entirely — the
/// packed CSR graph is loaded back as-is (one-time build cost, fast
/// downstream passes).
///
/// File layout (all integers little-endian):
///
///   header, 24 bytes:
///     [0..3]   magic "LTMS"
///     [4..7]   uint32 format version (kSnapshotVersion)
///     [8..15]  uint64 payload size in bytes
///     [16..23] uint64 FNV-1a 64 checksum of the payload
///   payload:
///     name:        uint64 length + bytes
///     interners:   entities, attributes, sources — each uint64 count,
///                  then per string uint64 length + bytes
///     raw rows:    uint64 count, then per row 3x uint32 (e, a, s)
///     facts:       uint64 count, then per fact 2x uint32 (entity, attr)
///     claim graph: uint64 num_sources, uint64 offset count + uint32[]
///                  fact offsets, uint64 claim count + uint32[] packed
///                  fact-side entries (source << 1 | obs); the source-side
///                  CSR and derived stats are rebuilt on load
///     labels:      uint64 count, then int8 per fact (-1/0/1)
///
/// Loading verifies magic, version, payload size and checksum before
/// parsing, bounds-checks every read, and cross-validates the sections
/// (row ids against interner sizes, graph against fact/source counts),
/// so truncated or corrupted files are rejected with a non-OK Status
/// instead of producing a broken Dataset.

inline constexpr char kSnapshotMagic[4] = {'L', 'T', 'M', 'S'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Writes `dataset` to `path` crash-safely: the bytes go to `path + ".tmp"`,
/// are fsynced, and are atomically renamed over `path` — an interrupted
/// save can never corrupt an existing snapshot. IOError when the file
/// cannot be written.
Status SaveDatasetSnapshot(const Dataset& dataset, const std::string& path);

/// Reads a snapshot written by SaveDatasetSnapshot. IOError when the file
/// cannot be read; InvalidArgument for bad magic, unsupported version,
/// truncation, checksum mismatch, or inconsistent content.
Result<Dataset> LoadDatasetSnapshot(const std::string& path);

/// LoadDatasetSnapshot over an in-memory image of a snapshot file (header
/// included). `label` names the source in error messages. This is the
/// actual parser — LoadDatasetSnapshot is a thin file-slurping wrapper —
/// and the entry point the snapshot fuzzer drives: every byte string must
/// yield a valid Dataset or a non-OK Status, never a crash, and every
/// size field is bounds-checked against the bytes actually present
/// *before* any allocation sized from it (allocation-bomb hardening).
Result<Dataset> LoadDatasetSnapshotFromBytes(std::string_view file,
                                             const std::string& label);

}  // namespace ltm

#endif  // LTM_DATA_SNAPSHOT_H_
