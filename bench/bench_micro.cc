// Google-benchmark micro-benchmarks for the hot paths: one collapsed
// Gibbs sweep, claim materialization and graph flattening, the LTMinc
// closed form (Eq. 3), source-quality read-off, the synthetic generators,
// struct-walk vs packed-graph-walk method loops, and snapshot-load vs
// TSV-ingest.
//
// The *Struct benchmarks re-implement the pre-refactor hot loops over the
// 12-byte Claim structs that the methods used to iterate; the *Graph
// benchmarks run the loops the migrated methods use today. Run with
//   --benchmark_filter='Struct|Graph|Tsv|Snapshot'
//   --benchmark_out=BENCH_methods.json
// to emit the substrate-comparison artifact CI checks, and with
//   --benchmark_filter='GibbsSweep' --benchmark_out=BENCH_kernel.json
// to emit the fused-vs-reference Gibbs kernel comparison CI gates at
// >= 2x single-thread throughput.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "data/claim_graph.h"
#include "data/claim_table.h"
#include "data/dataset.h"
#include "data/snapshot.h"
#include "data/tsv_io.h"
#include "store/truth_store.h"
#include "store/wal.h"
#include "synth/ltm_process.h"
#include "synth/movie_simulator.h"
#include "truth/ltm.h"
#include "truth/ltm_incremental.h"
#include "truth/ltm_parallel.h"
#include "truth/source_quality.h"

namespace ltm {
namespace {

const synth::LtmProcessData& SharedProcessData(size_t facts) {
  static auto* cache =
      new std::map<size_t, synth::LtmProcessData>();
  auto it = cache->find(facts);
  if (it == cache->end()) {
    synth::LtmProcessOptions gen;
    gen.num_facts = facts;
    gen.num_sources = 20;
    it = cache->emplace(facts, synth::GenerateLtmProcess(gen)).first;
  }
  return it->second;
}

const Dataset& SharedMovieDataset(size_t movies) {
  static auto* cache = new std::map<size_t, Dataset>();
  auto it = cache->find(movies);
  if (it == cache->end()) {
    synth::MovieSimOptions gen;
    gen.num_movies = movies;
    it = cache->emplace(movies, synth::GenerateMovieDataset(gen)).first;
  }
  return it->second;
}

/// The demoted struct-of-claims table for the same movie world — the
/// substrate every method iterated before the columnar refactor.
const ClaimTable& SharedMovieTable(size_t movies) {
  static auto* cache = new std::map<size_t, ClaimTable>();
  auto it = cache->find(movies);
  if (it == cache->end()) {
    const Dataset& ds = SharedMovieDataset(movies);
    it = cache->emplace(movies, ClaimTable::Build(ds.raw, ds.facts)).first;
  }
  return it->second;
}

std::string BenchFilePath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// The reference (bit-pinned) kernel: two LogConditional passes per fact,
// four std::log calls per packed entry. BM_GibbsSweepFused below runs the
// same sweep on the fused kernel; CI emits both into BENCH_kernel.json
// (filter 'GibbsSweep') and gates fused >= 2x reference.
void BM_GibbsSweep(benchmark::State& state) {
  const auto& data = SharedProcessData(state.range(0));
  LtmOptions opts = LtmOptions::ScaledDefaults(data.graph.NumFacts());
  opts.kernel = LtmKernel::kReference;
  LtmGibbs sampler(data.graph, opts);
  for (auto _ : state) {
    sampler.RunSweep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumClaims()));
}
BENCHMARK(BM_GibbsSweep)->Arg(1000)->Arg(10000);

// The fused log-odds kernel: one adjacency pass per fact, all
// transcendentals memoized in log(count + alpha) tables.
void BM_GibbsSweepFused(benchmark::State& state) {
  const auto& data = SharedProcessData(state.range(0));
  LtmOptions opts = LtmOptions::ScaledDefaults(data.graph.NumFacts());
  opts.kernel = LtmKernel::kFused;
  LtmGibbs sampler(data.graph, opts);
  for (auto _ : state) {
    sampler.RunSweep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumClaims()));
}
BENCHMARK(BM_GibbsSweepFused)->Arg(1000)->Arg(10000);

// Sharded sweep on the production default kernel (kAuto: reference at
// one shard, fused beyond), so the curve shows the compounded
// kernel-times-sharding throughput a `threads=N` spec actually gets.
void BM_ShardedGibbsSweep(benchmark::State& state) {
  const auto& data = SharedProcessData(10000);
  LtmOptions opts = LtmOptions::ScaledDefaults(data.graph.NumFacts());
  opts.threads = static_cast<int>(state.range(0));
  ParallelLtmGibbs sampler(data.graph, opts);
  for (auto _ : state) {
    sampler.RunSweep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumClaims()));
}
BENCHMARK(BM_ShardedGibbsSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ClaimGraphBuild(benchmark::State& state) {
  const ClaimTable& table = SharedMovieTable(state.range(0));
  for (auto _ : state) {
    ClaimGraph graph = ClaimGraph::Build(table);
    benchmark::DoNotOptimize(graph.NumClaims());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.NumClaims()));
}
BENCHMARK(BM_ClaimGraphBuild)->Arg(1000)->Arg(4000);

void BM_ClaimTableBuild(benchmark::State& state) {
  const Dataset& ds = SharedMovieDataset(state.range(0));
  for (auto _ : state) {
    ClaimTable table = ClaimTable::Build(ds.raw, ds.facts);
    benchmark::DoNotOptimize(table.NumClaims());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.NumClaims()));
}
BENCHMARK(BM_ClaimTableBuild)->Arg(1000)->Arg(4000);

// ---------------------------------------------------------------------------
// Struct-walk vs graph-walk: one TruthFinder fixed-point iteration.

constexpr double kTrustCap = 1.0 - 1e-9;
constexpr double kDampening = 0.3;

void BM_TruthFinderIterStruct(benchmark::State& state) {
  const ClaimTable& table = SharedMovieTable(8000);
  std::vector<double> trust(table.NumSources(), 0.8);
  std::vector<double> conf(table.NumFacts(), 0.0);
  std::vector<double> sum(table.NumSources());
  std::vector<size_t> n(table.NumSources());
  for (auto _ : state) {
    for (FactId f = 0; f < table.NumFacts(); ++f) {
      double sigma = 0.0;
      for (const Claim& c : table.ClaimsOfFact(f)) {
        if (!c.observation) continue;
        sigma += -std::log(1.0 - std::min(trust[c.source], kTrustCap));
      }
      conf[f] = Sigmoid(kDampening * sigma);
    }
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(n.begin(), n.end(), 0);
    for (const Claim& c : table.claims()) {
      if (!c.observation) continue;
      sum[c.source] += conf[c.fact];
      ++n[c.source];
    }
    for (SourceId s = 0; s < table.NumSources(); ++s) {
      if (n[s] > 0) trust[s] = sum[s] / static_cast<double>(n[s]);
    }
    benchmark::DoNotOptimize(trust.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.NumClaims()));
}
BENCHMARK(BM_TruthFinderIterStruct);

void BM_TruthFinderIterGraph(benchmark::State& state) {
  const ClaimGraph& graph = SharedMovieDataset(8000).graph;
  std::vector<double> trust(graph.NumSources(), 0.8);
  std::vector<double> weight(graph.NumSources(), 0.0);
  std::vector<double> conf(graph.NumFacts(), 0.0);
  for (auto _ : state) {
    // The migrated method's loop: one log per source, then a pure
    // streaming pass over the packed adjacency.
    for (SourceId s = 0; s < graph.NumSources(); ++s) {
      weight[s] = -std::log(1.0 - std::min(trust[s], kTrustCap));
    }
    for (FactId f = 0; f < graph.NumFacts(); ++f) {
      double sigma = 0.0;
      for (uint32_t entry : graph.FactClaims(f)) {
        if (!ClaimGraph::PackedObs(entry)) continue;
        sigma += weight[ClaimGraph::PackedId(entry)];
      }
      conf[f] = Sigmoid(kDampening * sigma);
    }
    for (SourceId s = 0; s < graph.NumSources(); ++s) {
      double sum = 0.0;
      for (uint32_t entry : graph.SourceClaims(s)) {
        if (!ClaimGraph::PackedObs(entry)) continue;
        sum += conf[ClaimGraph::PackedId(entry)];
      }
      const uint32_t n = graph.SourcePositiveCount(s);
      if (n > 0) trust[s] = sum / static_cast<double>(n);
    }
    benchmark::DoNotOptimize(trust.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.NumClaims()));
}
BENCHMARK(BM_TruthFinderIterGraph);

// ---------------------------------------------------------------------------
// Struct-walk vs graph-walk: voting.

void BM_VotingStruct(benchmark::State& state) {
  const ClaimTable& table = SharedMovieTable(8000);
  std::vector<double> prob(table.NumFacts(), 0.0);
  for (auto _ : state) {
    for (FactId f = 0; f < table.NumFacts(); ++f) {
      auto fact_claims = table.ClaimsOfFact(f);
      if (fact_claims.empty()) continue;
      size_t pos = 0;
      for (const Claim& c : fact_claims) {
        if (c.observation) ++pos;
      }
      prob[f] = static_cast<double>(pos) /
                static_cast<double>(fact_claims.size());
    }
    benchmark::DoNotOptimize(prob.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.NumClaims()));
}
BENCHMARK(BM_VotingStruct);

void BM_VotingGraph(benchmark::State& state) {
  const ClaimGraph& graph = SharedMovieDataset(8000).graph;
  std::vector<double> prob(graph.NumFacts(), 0.0);
  for (auto _ : state) {
    // The migrated method's loop: derived stats only, no adjacency walk.
    for (FactId f = 0; f < graph.NumFacts(); ++f) {
      const uint32_t degree = graph.FactDegree(f);
      if (degree == 0) continue;
      prob[f] = static_cast<double>(graph.FactPositiveCount(f)) /
                static_cast<double>(degree);
    }
    benchmark::DoNotOptimize(prob.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.NumClaims()));
}
BENCHMARK(BM_VotingGraph);

// ---------------------------------------------------------------------------
// Snapshot-load vs TSV-ingest: the repeat-run path the snapshot format
// exists for.

void BM_DatasetIngestTsv(benchmark::State& state) {
  const Dataset& ds = SharedMovieDataset(4000);
  const std::string path = BenchFilePath("ltm_bench_micro.tsv");
  Status st = WriteRawDatabaseToTsv(ds.raw, path);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto raw = LoadRawDatabaseFromTsv(path);
    if (!raw.ok()) {
      state.SkipWithError(raw.status().ToString().c_str());
      return;
    }
    Dataset loaded = Dataset::FromRaw("bench", std::move(raw).value());
    benchmark::DoNotOptimize(loaded.graph.NumClaims());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.NumClaims()));
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetIngestTsv);

void BM_DatasetLoadSnapshot(benchmark::State& state) {
  const Dataset& ds = SharedMovieDataset(4000);
  const std::string path = BenchFilePath("ltm_bench_micro.snap");
  Status st = ds.SaveSnapshot(path);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto loaded = Dataset::LoadSnapshot(path);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded->graph.NumClaims());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.graph.NumClaims()));
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetLoadSnapshot);

// ---------------------------------------------------------------------------
// TruthStore ingest and recovery: WAL append throughput (the store's
// write hot path — buffered appends, group-commit fsync excluded) and
// WAL replay (the recovery hot path).

std::vector<store::WalRecord> SampleWalRecords(size_t count) {
  std::vector<store::WalRecord> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    store::WalRecord r;
    r.entity = "movie-" + std::to_string(i % 4096);
    r.attribute = "director-" + std::to_string(i % 512);
    r.source = "source-" + std::to_string(i % 64);
    records.push_back(std::move(r));
  }
  return records;
}

void BM_WalAppend(benchmark::State& state) {
  const std::string path = BenchFilePath("ltm_bench_wal_append.log");
  std::remove(path.c_str());
  auto writer = store::WalWriter::Open(path);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  const std::vector<store::WalRecord> records = SampleWalRecords(1024);
  size_t i = 0;
  for (auto _ : state) {
    Status st = writer->Append(records[i++ & 1023]);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  (void)writer->Sync();  // one group commit for the whole run
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend);

void BM_StoreAppend(benchmark::State& state) {
  const std::string dir = BenchFilePath("ltm_bench_store_append");
  std::filesystem::remove_all(dir);
  auto st = store::TruthStore::Open(dir);
  if (!st.ok()) {
    state.SkipWithError(st.status().ToString().c_str());
    return;
  }
  const std::vector<store::WalRecord> records = SampleWalRecords(1024);
  size_t i = 0;
  for (auto _ : state) {
    Status s = (*st)->Append(records[i++ & 1023]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  (void)(*st)->Sync();
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreAppend);

void BM_WalReplayRecovery(benchmark::State& state) {
  const size_t num_records = static_cast<size_t>(state.range(0));
  const std::string path = BenchFilePath("ltm_bench_wal_replay.log");
  std::remove(path.c_str());
  {
    auto writer = store::WalWriter::Open(path);
    if (!writer.ok()) {
      state.SkipWithError(writer.status().ToString().c_str());
      return;
    }
    for (const store::WalRecord& r : SampleWalRecords(num_records)) {
      (void)writer->Append(r);
    }
    (void)writer->Sync();
  }
  for (auto _ : state) {
    auto replay = store::ReplayWal(path);
    if (!replay.ok()) {
      state.SkipWithError(replay.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(replay->records.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_records));
  std::remove(path.c_str());
}
BENCHMARK(BM_WalReplayRecovery)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Block-format read path: point lookup vs slice materialization over a
// multi-segment store. Run with --benchmark_filter='StorePoint|StoreSlice'
// for the read-amplification pair; bench_store_read emits the CI-gated
// BENCH_store_read.json variant of the same comparison.

store::TruthStore* SharedReadStore() {
  static auto* cached = []() -> std::unique_ptr<store::TruthStore>* {
    const std::string dir = BenchFilePath("ltm_bench_micro_store_read");
    std::filesystem::remove_all(dir);
    auto opened = store::TruthStore::Open(dir);
    if (!opened.ok()) return new std::unique_ptr<store::TruthStore>();
    // Eight flushed segments over disjoint entity ranges — the shape
    // leveled compaction converges to — so a point read must pick the one
    // covering segment (zone stats + bloom) and then one data block.
    for (int seg = 0; seg < 8; ++seg) {
      RawDatabase batch;
      for (int i = 0; i < 512; ++i) {
        char entity[32];
        std::snprintf(entity, sizeof entity, "movie-%05d", seg * 512 + i);
        for (int s = 0; s < 4; ++s) {
          batch.Add(entity, "director", "source-" + std::to_string(s));
        }
      }
      if (!(*opened)->AppendRaw(batch).ok() || !(*opened)->Flush().ok()) {
        return new std::unique_ptr<store::TruthStore>();
      }
    }
    return new std::unique_ptr<store::TruthStore>(std::move(*opened));
  }();
  return cached->get();
}

void BM_StorePointLookup(benchmark::State& state) {
  store::TruthStore* ts = SharedReadStore();
  if (ts == nullptr) {
    state.SkipWithError("read-store fixture build failed");
    return;
  }
  const std::unique_ptr<store::EpochPin> pin = ts->PinEpoch();
  uint64_t blocks = 0;
  uint64_t disk_bytes = 0;
  uint64_t queries = 0;
  int e = 0;
  for (auto _ : state) {
    char entity[32];
    std::snprintf(entity, sizeof entity, "movie-%05d", e & 4095);
    e += 997;  // prime stride: consecutive lookups land in far-apart blocks
    const std::string key(entity);
    store::RangeScanStats rs;
    auto slice = ts->MaterializeFromPin(*pin, &key, &key, &rs);
    if (!slice.ok()) {
      state.SkipWithError(slice.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(slice->raw.NumRows());
    blocks += rs.blocks_read;
    disk_bytes += rs.bytes_read;
    ++queries;
  }
  if (queries > 0) {
    state.counters["blocks_per_query"] =
        static_cast<double>(blocks) / static_cast<double>(queries);
    state.counters["disk_bytes_per_query"] =
        static_cast<double>(disk_bytes) / static_cast<double>(queries);
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
}
BENCHMARK(BM_StorePointLookup);

void BM_StoreSliceMaterialize(benchmark::State& state) {
  store::TruthStore* ts = SharedReadStore();
  if (ts == nullptr) {
    state.SkipWithError("read-store fixture build failed");
    return;
  }
  const std::string min = "movie-00000";
  const std::string max = "movie-99999";
  uint64_t blocks = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    store::RangeScanStats rs;
    auto slice = ts->MaterializeEntityRange(min, max, &rs);
    if (!slice.ok()) {
      state.SkipWithError(slice.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(slice->raw.NumRows());
    blocks += rs.blocks_read;
    ++queries;
  }
  if (queries > 0) {
    state.counters["blocks_per_query"] =
        static_cast<double>(blocks) / static_cast<double>(queries);
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
}
BENCHMARK(BM_StoreSliceMaterialize);

void BM_LtmIncPredict(benchmark::State& state) {
  const auto& data = SharedProcessData(state.range(0));
  LtmOptions opts = LtmOptions::ScaledDefaults(data.graph.NumFacts());
  std::vector<double> p(data.graph.NumFacts(), 0.7);
  SourceQuality quality =
      EstimateSourceQuality(data.graph, p, opts.alpha0, opts.alpha1);
  LtmIncremental inc(quality, opts);
  FactTable facts;
  for (auto _ : state) {
    TruthEstimate est = inc.Score(facts, data.graph);
    benchmark::DoNotOptimize(est.probability.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumClaims()));
}
BENCHMARK(BM_LtmIncPredict)->Arg(1000)->Arg(10000);

void BM_SourceQualityReadOff(benchmark::State& state) {
  const auto& data = SharedProcessData(10000);
  std::vector<double> p(data.graph.NumFacts(), 0.6);
  LtmOptions opts;
  for (auto _ : state) {
    SourceQuality q =
        EstimateSourceQuality(data.graph, p, opts.alpha0, opts.alpha1);
    benchmark::DoNotOptimize(q.sensitivity.data());
  }
}
BENCHMARK(BM_SourceQualityReadOff);

void BM_MovieGenerator(benchmark::State& state) {
  for (auto _ : state) {
    synth::MovieSimOptions gen;
    gen.num_movies = state.range(0);
    Dataset ds = synth::GenerateMovieDataset(gen);
    benchmark::DoNotOptimize(ds.graph.NumClaims());
  }
}
BENCHMARK(BM_MovieGenerator)->Arg(1000);

}  // namespace
}  // namespace ltm

BENCHMARK_MAIN();
