// Fuzz target for the dataset snapshot loader. Snapshots are the binary
// interchange format (`ltm_cli pack` output) and may arrive from other
// machines, so the loader must treat every field as hostile: bad magic,
// forged payload sizes, interner counts larger than the file
// (allocation bombs), truncated arrays, and checksum mismatches must all
// fail with a Status — never a crash or a giant reserve.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "data/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto dataset = ltm::LoadDatasetSnapshotFromBytes(bytes, "fuzz-input");
  if (dataset.ok()) {
    // Walk the loaded structures so sanitizers can check the invariants
    // a successful parse claims to establish.
    size_t total = dataset->raw.NumRows() + dataset->facts.NumFacts() +
                   dataset->graph.NumSources();
    (void)total;
  }
  return 0;
}
