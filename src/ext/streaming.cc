#include "ext/streaming.h"

#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "truth/registry.h"

namespace ltm {
namespace ext {

namespace {

/// Copies every row of `src` into `dst` (interning strings through dst's
/// dictionaries; duplicates are deduped by RawDatabase).
void MergeRaw(const RawDatabase& src, RawDatabase* dst) {
  for (const RawRow& row : src.rows()) {
    dst->Add(src.entities().Get(row.entity), src.attributes().Get(row.attribute),
             src.sources().Get(row.source));
  }
}

}  // namespace

StreamingPipeline::StreamingPipeline(StreamingOptions options)
    : options_(std::move(options)), serving_(options_.ltm) {}

Result<TruthResult> StreamingPipeline::Run(const RunContext& ctx,
                                           const FactTable& facts,
                                           const ClaimGraph& graph) const {
  return serving_.Run(ctx, facts, graph);
}

Status StreamingPipeline::Bootstrap(const Dataset& history,
                                    const RunContext& ctx) {
  // Keep the shared source id space: intern history's sources first.
  // Re-merging on a retried bootstrap is harmless: RawDatabase dedups.
  for (const std::string& s : history.raw.sources().strings()) {
    cumulative_.mutable_sources().Intern(s);
  }
  MergeRaw(history.raw, &cumulative_);
  LTM_RETURN_IF_ERROR(Refit(ctx));
  bootstrapped_ = true;
  return Status::OK();
}

Status StreamingPipeline::Observe(const Dataset& chunk, const RunContext& ctx) {
  // One observer spans the whole ingest so the caller's deadline budget
  // covers scoring *and* refitting; each nested run gets the remainder.
  RunObserver obs(ctx, "StreamingLTM");
  last_refit_ = false;
  if (!bootstrapped_) {
    // No quality yet: bootstrap from this very chunk (cold start). The
    // refit absorbs the chunk's evidence, so score it statelessly rather
    // than accumulating it into serving_ a second time.
    LTM_RETURN_IF_ERROR(Bootstrap(chunk, obs.NestedContext()));
    LTM_ASSIGN_OR_RETURN(
        last_result_,
        serving_.Run(obs.NestedContext(), chunk.facts, chunk.graph));
    has_estimate_ = true;
    chunks_.push_back(chunk.graph.NumClaims());
    last_refit_ = true;
    return Status::OK();
  }
  // Score + accumulate the chunk's expected counts under the current
  // quality, then cache its result for Estimate().
  LTM_RETURN_IF_ERROR(serving_.Observe(chunk, obs.NestedContext()));
  LTM_ASSIGN_OR_RETURN(last_result_, serving_.Estimate());
  has_estimate_ = true;
  MergeRaw(chunk.raw, &cumulative_);
  chunks_.push_back(chunk.graph.NumClaims());
  if (options_.refit_every_chunks > 0 &&
      chunks_.size() % options_.refit_every_chunks == 0) {
    Status refit = Refit(obs.NestedContext());
    if (!refit.ok()) {
      // Roll the chunk count back so a retried Observe does not double
      // count it (the raw merge is deduped; serving_'s transient double
      // accumulation is discarded by the next successful refit).
      chunks_.pop_back();
      return refit;
    }
    last_refit_ = true;
  }
  return Status::OK();
}

Result<TruthResult> StreamingPipeline::Estimate(const RunContext& ctx) const {
  (void)ctx;
  if (!has_estimate_) {
    return Status::FailedPrecondition(
        "StreamingLTM: Estimate() before any Observe(); ingest a chunk first");
  }
  return last_result_;
}

UpdatedPriors StreamingPipeline::AccumulatedPriors() const {
  return serving_.AccumulatedPriors();
}

Result<ChunkResult> StreamingPipeline::IngestChunk(const Dataset& chunk,
                                                   const RunContext& ctx) {
  LTM_RETURN_IF_ERROR(Observe(chunk, ctx));
  ChunkResult result;
  result.estimate = last_result_.estimate;
  result.refit = last_refit_;
  return result;
}

Status StreamingPipeline::Refit(const RunContext& ctx) {
  FactTable facts = FactTable::Build(cumulative_);
  const ClaimGraph graph =
      ClaimGraph::Build(ClaimTable::Build(cumulative_, facts));
  LatentTruthModel model(options_.ltm);
  // `ctx` already carries the caller's remaining budget (Observe derives
  // it via NestedContext), so it is copied through as-is.
  RunContext refit_ctx;
  refit_ctx.cancel = ctx.cancel;
  refit_ctx.deadline_seconds = ctx.deadline_seconds;
  refit_ctx.with_quality = true;
  refit_ctx.on_progress = ctx.on_progress;
  LTM_ASSIGN_OR_RETURN(TruthResult result, model.Run(refit_ctx, facts, graph));
  quality_ = std::move(*result.quality);
  // The refit absorbed everything serving_ had accumulated; restart it
  // from the fresh read-off.
  serving_ = LtmIncremental(quality_, options_.ltm);
  LTM_LOG(Info) << "streaming refit on " << graph.NumClaims() << " claims, "
                << quality_.NumSources() << " sources";
  return Status::OK();
}

LTM_REGISTER_TRUTH_METHOD(
    "StreamingLTM", {"streamingpipeline"},
    [](const MethodOptions& opts, const LtmOptions& base)
        -> Result<std::unique_ptr<TruthMethod>> {
      StreamingOptions options;
      LTM_ASSIGN_OR_RETURN(
          const int refit_every,
          opts.GetInt("refit_every",
                      static_cast<int>(options.refit_every_chunks)));
      if (refit_every < 0) {
        return Status::InvalidArgument(
            "StreamingLTM refit_every must be >= 0, got " +
            std::to_string(refit_every));
      }
      options.refit_every_chunks = static_cast<size_t>(refit_every);
      LTM_ASSIGN_OR_RETURN(options.ltm, LtmOptionsFromSpec(opts, base));
      return std::unique_ptr<TruthMethod>(new StreamingPipeline(options));
    });

}  // namespace ext
}  // namespace ltm
