#include <gtest/gtest.h>

#include <set>

#include "synth/book_simulator.h"
#include "synth/labeling.h"
#include "synth/ltm_process.h"
#include "synth/movie_simulator.h"

namespace ltm {
namespace {

TEST(LtmProcessTest, ShapeMatchesOptions) {
  synth::LtmProcessOptions opts;
  opts.num_facts = 200;
  opts.num_sources = 7;
  synth::LtmProcessData data = synth::GenerateLtmProcess(opts);
  EXPECT_EQ(data.facts.NumFacts(), 200u);
  EXPECT_EQ(data.graph.NumFacts(), 200u);
  EXPECT_EQ(data.graph.NumSources(), 7u);
  // Paper §6.1.1: every source claims every fact.
  EXPECT_EQ(data.graph.NumClaims(), 200u * 7u);
  EXPECT_EQ(data.truth.NumLabeled(), 200u);
  EXPECT_EQ(data.true_fpr.size(), 7u);
  EXPECT_EQ(data.true_sensitivity.size(), 7u);
}

TEST(LtmProcessTest, QualityParamsFollowPriors) {
  synth::LtmProcessOptions opts;
  opts.num_facts = 10;
  opts.num_sources = 400;  // Many sources to average over.
  opts.alpha0 = BetaPrior{10.0, 90.0};
  opts.alpha1 = BetaPrior{90.0, 10.0};
  synth::LtmProcessData data = synth::GenerateLtmProcess(opts);
  double mean_fpr = 0.0;
  double mean_sens = 0.0;
  for (size_t s = 0; s < 400; ++s) {
    mean_fpr += data.true_fpr[s];
    mean_sens += data.true_sensitivity[s];
  }
  EXPECT_NEAR(mean_fpr / 400, 0.1, 0.02);
  EXPECT_NEAR(mean_sens / 400, 0.9, 0.02);
}

TEST(LtmProcessTest, TruthRateFollowsBetaPrior) {
  synth::LtmProcessOptions opts;
  opts.num_facts = 5000;
  opts.num_sources = 2;
  opts.beta = BetaPrior{10.0, 10.0};  // Mean 0.5 as in the paper.
  synth::LtmProcessData data = synth::GenerateLtmProcess(opts);
  const double rate = static_cast<double>(data.truth.NumLabeledTrue()) /
                      data.truth.NumLabeled();
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(LtmProcessTest, DeterministicForSeed) {
  synth::LtmProcessOptions opts;
  opts.num_facts = 50;
  opts.num_sources = 3;
  synth::LtmProcessData a = synth::GenerateLtmProcess(opts);
  synth::LtmProcessData b = synth::GenerateLtmProcess(opts);
  EXPECT_EQ(a.graph.fact_offsets(), b.graph.fact_offsets());
  EXPECT_EQ(a.graph.fact_claims(), b.graph.fact_claims());
  EXPECT_EQ(a.true_fpr, b.true_fpr);
}

TEST(BookSimulatorTest, ShapeResemblesPaperDataset) {
  synth::BookSimOptions opts;  // Paper-scale defaults.
  Dataset ds = synth::GenerateBookDataset(opts);
  EXPECT_EQ(ds.raw.NumEntities(), opts.num_books);
  // Multi-valued attribute: more facts than books.
  EXPECT_GT(ds.facts.NumFacts(), ds.raw.NumEntities());
  // All facts carry ground truth.
  EXPECT_EQ(ds.labels.NumLabeled(), ds.facts.NumFacts());
  // Plenty of claims, mostly from many distinct sellers.
  EXPECT_GT(ds.graph.NumClaims(), 10000u);
  EXPECT_GT(ds.raw.NumSources(), 100u);
  // False facts exist but truth dominates (high-specificity world).
  const double true_rate = static_cast<double>(ds.labels.NumLabeledTrue()) /
                           ds.labels.NumLabeled();
  EXPECT_GT(true_rate, 0.6);
  EXPECT_LT(true_rate, 1.0);
}

TEST(BookSimulatorTest, DeterministicForSeed) {
  synth::BookSimOptions opts;
  opts.num_books = 60;
  opts.num_sources = 40;
  Dataset a = synth::GenerateBookDataset(opts);
  Dataset b = synth::GenerateBookDataset(opts);
  EXPECT_EQ(a.raw.NumRows(), b.raw.NumRows());
  EXPECT_EQ(a.facts.NumFacts(), b.facts.NumFacts());
}

TEST(MovieSimulatorTest, TwelveSourcesNamedAsTable8) {
  synth::MovieSimOptions opts;
  opts.num_movies = 400;
  Dataset ds = synth::GenerateMovieDataset(opts);
  EXPECT_EQ(ds.raw.NumSources(), 12u);
  EXPECT_TRUE(ds.raw.sources().Find("imdb").has_value());
  EXPECT_TRUE(ds.raw.sources().Find("netflix").has_value());
  EXPECT_TRUE(ds.raw.sources().Find("fandango").has_value());
}

TEST(MovieSimulatorTest, ConflictFilterKeepsOnlyContested) {
  synth::MovieSimOptions opts;
  opts.num_movies = 500;
  opts.conflicting_only = true;
  Dataset ds = synth::GenerateMovieDataset(opts);
  // Every surviving movie has >= 2 claimed directors and >= 2 sources.
  for (size_t e = 0; e < ds.raw.NumEntities(); ++e) {
    const auto& facts = ds.facts.FactsOfEntity(static_cast<EntityId>(e));
    EXPECT_GE(facts.size(), 2u);
    std::set<SourceId> sources;
    for (FactId f : facts) {
      for (uint32_t entry : ds.graph.FactClaims(f)) {
        if (ClaimGraph::PackedObs(entry)) {
          sources.insert(ClaimGraph::PackedId(entry));
        }
      }
    }
    EXPECT_GE(sources.size(), 2u);
  }
}

TEST(MovieSimulatorTest, NoConflictFilterKeepsMore) {
  synth::MovieSimOptions filtered;
  filtered.num_movies = 500;
  filtered.conflicting_only = true;
  synth::MovieSimOptions unfiltered = filtered;
  unfiltered.conflicting_only = false;
  Dataset a = synth::GenerateMovieDataset(filtered);
  Dataset b = synth::GenerateMovieDataset(unfiltered);
  EXPECT_LT(a.raw.NumEntities(), b.raw.NumEntities());
}

TEST(LabelingTest, SampleEntitiesIsUniqueAndSized) {
  synth::MovieSimOptions opts;
  opts.num_movies = 300;
  Dataset ds = synth::GenerateMovieDataset(opts);
  auto sample = synth::SampleEntities(ds, 50, 9);
  EXPECT_EQ(sample.size(), 50u);
  std::set<EntityId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (EntityId e : sample) EXPECT_LT(e, ds.raw.NumEntities());
}

TEST(LabelingTest, SampleLargerThanPopulationReturnsAll) {
  synth::BookSimOptions opts;
  opts.num_books = 20;
  opts.num_sources = 30;
  Dataset ds = synth::GenerateBookDataset(opts);
  auto sample = synth::SampleEntities(ds, 100, 1);
  EXPECT_EQ(sample.size(), ds.raw.NumEntities());
}

TEST(LabelingTest, LabelsRestrictedToSampledEntities) {
  synth::MovieSimOptions opts;
  opts.num_movies = 300;
  Dataset ds = synth::GenerateMovieDataset(opts);
  auto sample = synth::SampleEntities(ds, 30, 77);
  TruthLabels labels = synth::LabelsForEntities(ds, sample);
  std::set<EntityId> sampled(sample.begin(), sample.end());
  for (FactId f = 0; f < labels.NumFacts(); ++f) {
    const bool in_sample = sampled.count(ds.facts.fact(f).entity) > 0;
    EXPECT_EQ(labels.IsLabeled(f), in_sample);
    if (labels.IsLabeled(f)) {
      EXPECT_EQ(labels.Get(f), ds.labels.Get(f));
    }
  }
}

}  // namespace
}  // namespace ltm
