#ifndef LTM_STORE_MANIFEST_H_
#define LTM_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ltm {
namespace store {

/// Per-segment metadata tracked by the manifest. The zone stats
/// (degree/positive counts and the lexicographic entity range) let
/// materialization skip segments that cannot contain a query's entities
/// without opening the files — the scan-skipping idea of
/// provenance-based data skipping applied to claim segments.
struct SegmentInfo {
  uint64_t id = 0;
  std::string file;  ///< filename relative to the store directory

  // Zone stats, computed at flush/compaction time from the segment's
  // materialized dataset.
  uint64_t num_rows = 0;
  uint64_t num_facts = 0;
  uint64_t num_sources = 0;
  uint64_t num_claims = 0;     ///< claim-graph degree total
  uint64_t num_positive = 0;   ///< positive-claim count
  std::string min_entity;      ///< lexicographically smallest entity key
  std::string max_entity;      ///< lexicographically largest entity key

  bool operator==(const SegmentInfo&) const = default;
};

/// The store's committed state: which segments exist (in ingest order —
/// materialization replays them by ascending id to reproduce batch row
/// order exactly) and which WAL file holds the tail that is newer than
/// every segment. Commits are atomic (temp + fsync + rename), so a crash
/// leaves either the old or the new manifest, never a mix.
///
/// File format: magic "LTMM", uint32 version, uint64 payload size,
/// uint64 FNV-1a 64 checksum, then the checksummed payload (generation,
/// next_segment_id, wal_seq, wal_file, segment list).
struct Manifest {
  uint64_t generation = 0;       ///< commit counter, monotonic
  uint64_t next_segment_id = 1;  ///< id the next flush/compaction takes
  uint64_t wal_seq = 1;          ///< sequence number of the active WAL
  std::string wal_file;          ///< active WAL filename, e.g. wal-000001.log
  std::vector<SegmentInfo> segments;

  /// Sum of num_rows over all segments.
  uint64_t TotalSegmentRows() const;
};

inline constexpr char kManifestMagic[4] = {'L', 'T', 'M', 'M'};
inline constexpr uint32_t kManifestVersion = 1;
inline constexpr char kManifestFileName[] = "MANIFEST";

/// Loads `dir`/MANIFEST. NotFound when the file does not exist (a fresh
/// store directory); InvalidArgument on any corruption — bad magic,
/// version, truncation, checksum mismatch, or trailing bytes.
Result<Manifest> LoadManifest(const std::string& dir);

/// Serializes `manifest` and commits it to `dir`/MANIFEST via
/// AtomicWriteFile (temp + fsync + atomic rename + directory fsync).
Status CommitManifest(const std::string& dir, const Manifest& manifest);

}  // namespace store
}  // namespace ltm

#endif  // LTM_STORE_MANIFEST_H_
