#include "eval/regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ltm {
namespace {

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1.
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHighR2) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0 + rng.Normal(0.0, 0.2));
  }
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  // This mirrors the paper's Fig. 6 check: linear runtime growth should
  // yield R^2 ~ 0.99.
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(LinearFitTest, UncorrelatedDataLowR2) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.Uniform());
    y.push_back(rng.Uniform());
  }
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_LT(fit.r_squared, 0.1);
}

TEST(LinearFitTest, ConstantXFallsBackToHorizontal) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(LinearFitTest, ConstantYPerfectFit) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 4, 4};
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

}  // namespace
}  // namespace ltm
