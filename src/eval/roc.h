#ifndef LTM_EVAL_ROC_H_
#define LTM_EVAL_ROC_H_

#include <vector>

#include "data/truth_labels.h"

namespace ltm {

/// One ROC operating point.
struct RocPoint {
  double fpr;
  double tpr;
  double threshold;
};

/// The full ROC curve of a scored truth estimate over the labeled facts,
/// from (0,0) to (1,1), one point per distinct score. Ties share a point.
std::vector<RocPoint> RocCurve(const std::vector<double>& fact_probability,
                               const TruthLabels& labels);

/// Area under the ROC curve via the rank statistic (equivalent to the
/// Wilcoxon–Mann–Whitney U normalized by #pos * #neg; ties count 1/2).
/// Returns 0.5 when either class is empty (no ranking information).
double AucScore(const std::vector<double>& fact_probability,
                const TruthLabels& labels);

/// Trapezoidal area under an ROC curve returned by RocCurve(). Agrees with
/// AucScore up to floating error; kept as an independent implementation so
/// tests can cross-check the two.
double TrapezoidArea(const std::vector<RocPoint>& curve);

}  // namespace ltm

#endif  // LTM_EVAL_ROC_H_
