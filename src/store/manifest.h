#ifndef LTM_STORE_MANIFEST_H_
#define LTM_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ltm {
namespace store {

/// Per-segment metadata tracked by the manifest. The zone stats
/// (row/fact/source counts, the lexicographic entity range, and the
/// ingest-sequence range) let materialization skip segments that cannot
/// contain a query's entities without opening the files — the
/// scan-skipping idea of provenance-based data skipping applied to claim
/// segments — and let recovery re-derive replay order from seq ranges.
struct SegmentInfo {
  uint64_t id = 0;
  std::string file;  ///< filename relative to the store directory
  /// LSM level: 0 = fresh memtable flushes (ranges may overlap), >= 1 =
  /// leveled (entity ranges within one level are disjoint).
  uint32_t level = 0;

  // Zone stats, computed by the block-segment writer at flush/compaction
  // time.
  uint64_t num_rows = 0;
  uint64_t num_facts = 0;      ///< distinct (entity, attribute) pairs
  uint64_t num_sources = 0;    ///< distinct sources
  uint64_t num_positive = 0;   ///< rows with observation == 1
  std::string min_entity;      ///< lexicographically smallest entity key
  std::string max_entity;      ///< lexicographically largest entity key
  uint64_t min_seq = 0;        ///< smallest ingest sequence number held
  uint64_t max_seq = 0;        ///< largest ingest sequence number held
  uint64_t file_bytes = 0;
  uint32_t num_blocks = 0;

  bool operator==(const SegmentInfo&) const = default;
};

/// The store's committed state: which segments exist (kept sorted by id;
/// replay order is recovered from row sequence numbers, not list order),
/// which WAL file holds the tail newer than every segment, and the next
/// global row sequence number to hand out.
///
/// File format v2 — a version-edit log instead of a rewritten snapshot:
///
///   header, 8 bytes: magic "LTMM" + uint32 version (2)
///   record: uint32 payload size, uint64 FNV-1a 64 checksum, payload
///     payload: uint8 record type (1 = full snapshot, 2 = edit), then the
///     type-specific fields (see VersionEdit)
///
/// The first record must be a snapshot. Commits append one checksummed
/// edit record (write + fsync, no rewrite) — O(delta) instead of
/// O(segments) per commit — and every `snapshot interval` edits the store
/// folds the log back into a fresh snapshot-only file via the atomic
/// temp + fsync + rename protocol. A torn trailing record is an
/// unacknowledged commit and is ignored (and truncated at the next open),
/// exactly like a torn WAL tail.
struct Manifest {
  uint64_t generation = 0;       ///< commit counter, monotonic
  uint64_t next_segment_id = 1;  ///< id the next flush/compaction takes
  uint64_t wal_seq = 1;          ///< sequence number of the active WAL
  std::string wal_file;          ///< active WAL filename, e.g. wal-000001.log
  uint64_t next_row_seq = 0;     ///< next global ingest sequence number
  std::vector<SegmentInfo> segments;  ///< sorted by ascending id

  /// Sum of num_rows over all segments.
  uint64_t TotalSegmentRows() const;
  /// Segments on `level`.
  size_t NumSegmentsAtLevel(uint32_t level) const;
  /// Highest level holding any segment (0 when empty).
  uint32_t MaxLevel() const;
};

/// One committed delta: the scalar state after the commit plus the
/// segment list changes. Applying every edit in order onto the preceding
/// snapshot reproduces the full Manifest.
struct VersionEdit {
  uint64_t generation = 0;
  uint64_t next_segment_id = 1;
  uint64_t wal_seq = 1;
  std::string wal_file;
  uint64_t next_row_seq = 0;
  std::vector<SegmentInfo> added;
  std::vector<uint64_t> deleted;  ///< segment ids removed by this commit

  bool operator==(const VersionEdit&) const = default;
};

inline constexpr char kManifestMagic[4] = {'L', 'T', 'M', 'M'};
inline constexpr uint32_t kManifestVersion = 2;
inline constexpr char kManifestFileName[] = "MANIFEST";

/// What LoadManifestDetailed learned beyond the state itself.
struct ManifestLoad {
  Manifest manifest;
  uint64_t records = 0;     ///< intact records applied (snapshot + edits)
  uint64_t edits = 0;       ///< of those, edit records
  uint64_t valid_bytes = 0; ///< offset just past the last intact record
  bool torn_tail = false;   ///< bytes past valid_bytes were ignored
};

/// Loads `dir`/MANIFEST. NotFound when the file does not exist (a fresh
/// store directory); InvalidArgument on corruption of the header or any
/// fully-present record — bad magic, version, checksum, allocation-bomb
/// counts, out-of-order segment ids. A torn *trailing* record is not an
/// error (see ManifestLoad::torn_tail).
Result<Manifest> LoadManifest(const std::string& dir);
Result<ManifestLoad> LoadManifestDetailed(const std::string& dir);

/// LoadManifestDetailed over an in-memory image (header included);
/// `label` names the source in error messages. The actual parser, split
/// out so tests and fuzzers can drive it byte-exactly.
Result<ManifestLoad> LoadManifestFromBytes(std::string_view bytes,
                                           const std::string& label);

/// Serializes `manifest` as a snapshot-only log and commits it to
/// `dir`/MANIFEST via AtomicWriteFile (temp + fsync + atomic rename +
/// directory fsync).
Status CommitManifest(const std::string& dir, const Manifest& manifest);

/// Appends one edit record to `dir`/MANIFEST and fsyncs it. Calls
/// FailpointCheck("manifest-edit-append:" + path) before touching the
/// file, so an injected crash there loses exactly the uncommitted edit.
/// On a write failure after partial bytes landed, truncates back to the
/// pre-append size (best effort) so in-process retries do not strand a
/// torn record in the middle of the log.
Status AppendManifestEdit(const std::string& dir, const VersionEdit& edit);

/// Applies `edit` onto `m` (scalar state overwritten, `deleted` ids
/// removed, `added` inserted keeping id order). InvalidArgument when an
/// id to delete is absent or an added id already exists / exceeds
/// next_segment_id.
Status ApplyVersionEdit(Manifest* m, const VersionEdit& edit,
                        const std::string& label);

}  // namespace store
}  // namespace ltm

#endif  // LTM_STORE_MANIFEST_H_
