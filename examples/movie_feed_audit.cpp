// Movie feed audit: the Bing-movies scenario of §6.1.1 — twelve
// commercial feeds disagree about directors; we infer the truth, read off
// two-sided source quality (§5.3), and produce the kind of per-feed audit
// report a data-integration team would use to select or fix feeds
// ("uncovering or diagnosing problems with crawlers", §2.2).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "synth/labeling.h"
#include "synth/movie_simulator.h"
#include "truth/ltm.h"

int main() {
  ltm::synth::MovieSimOptions gen;
  gen.num_movies = 6000;  // A medium-size feed snapshot.
  ltm::Dataset ds = ltm::synth::GenerateMovieDataset(gen);
  std::printf("%s\n\n", ds.SummaryString().c_str());

  ltm::LtmOptions opts =
      ltm::LtmOptions::ScaledDefaults(ds.facts.NumFacts());
  opts.iterations = 150;
  opts.burnin = 30;
  opts.sample_gap = 2;
  ltm::LatentTruthModel model(opts);
  ltm::SourceQuality quality;
  ltm::TruthEstimate est = model.RunWithQuality(ds.graph, &quality);

  // Feed audit, sorted by sensitivity as in the paper's Table 8.
  struct FeedRow {
    std::string name;
    ltm::SourceId id;
  };
  std::vector<FeedRow> feeds;
  for (ltm::SourceId s = 0; s < ds.raw.NumSources(); ++s) {
    feeds.push_back({std::string(ds.raw.sources().Get(s)), s});
  }
  std::sort(feeds.begin(), feeds.end(),
            [&](const FeedRow& a, const FeedRow& b) {
              return quality.sensitivity[a.id] > quality.sensitivity[b.id];
            });

  ltm::TablePrinter table({"Feed", "Sensitivity", "Specificity", "Precision",
                           "Claims", "Verdict"});
  for (const FeedRow& feed : feeds) {
    const double sens = quality.sensitivity[feed.id];
    const double spec = quality.specificity[feed.id];
    std::string verdict;
    if (sens > 0.8 && spec > 0.9) {
      verdict = "trusted";
    } else if (spec < 0.8) {
      verdict = "noisy: check extraction";
    } else if (sens < 0.7) {
      verdict = "incomplete: low coverage of credits";
    } else {
      verdict = "acceptable";
    }
    table.AddRow({feed.name, ltm::FormatDouble(sens, 3),
                  ltm::FormatDouble(spec, 3),
                  ltm::FormatDouble(quality.precision[feed.id], 3),
                  std::to_string(ds.graph.SourceDegree(feed.id)),
                  verdict});
  }
  table.Print();

  // Sanity: accuracy on a 100-movie labeled sample.
  ltm::TruthLabels eval_labels = ltm::synth::LabelsForEntities(
      ds, ltm::synth::SampleEntities(ds, 100, 1));
  ltm::PointMetrics m =
      ltm::EvaluateAtThreshold(est.probability, eval_labels, 0.5);
  std::printf(
      "\nResolution quality on a 100-movie labeled sample: accuracy %.3f, "
      "F1 %.3f\n",
      m.accuracy(), m.f1());

  // Top contested credits: facts with the most conflicting evidence.
  std::printf("\nMost contested credits (support vs denials, P(true)):\n");
  std::vector<std::pair<size_t, ltm::FactId>> contested;
  for (ltm::FactId f = 0; f < ds.facts.NumFacts(); ++f) {
    const size_t pos = ds.graph.FactPositiveCount(f);
    const size_t neg = ds.graph.FactDegree(f) - pos;
    contested.emplace_back(std::min(pos, neg), f);
  }
  std::sort(contested.rbegin(), contested.rend());
  for (size_t i = 0; i < 5 && i < contested.size(); ++i) {
    const ltm::FactId f = contested[i].second;
    const ltm::Fact& fact = ds.facts.fact(f);
    const size_t pos = ds.graph.FactPositiveCount(f);
    std::printf("  %s directed by %s: %zu for / %zu against -> P(true)=%.2f\n",
                std::string(ds.raw.entities().Get(fact.entity)).c_str(),
                std::string(ds.raw.attributes().Get(fact.attribute)).c_str(),
                pos, ds.graph.FactDegree(f) - pos, est.probability[f]);
  }
  return 0;
}
