#ifndef LTM_EXT_MULTI_ATTRIBUTE_H_
#define LTM_EXT_MULTI_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "truth/ltm.h"
#include "truth/options.h"
#include "truth/source_quality.h"

namespace ltm {
namespace ext {

/// Controls for joint inference over multiple attribute types (paper §7,
/// "Multiple attribute types"). Each type is fit with LTM, but the
/// per-type quality priors are coupled through a shared global prior:
/// after each round the global prior is re-estimated from all types'
/// inferred source quality (moment matching on the Beta distribution,
/// a fixed-strength approximation of the Newton step the paper sketches),
/// and the next round's per-type fits use it. Quality evidence thus flows
/// between attribute types via their common prior.
struct MultiAttributeOptions {
  LtmOptions ltm;
  /// Outer coupling rounds (1 = independent fits, no sharing).
  int coupling_rounds = 2;
  /// Pseudo-count strength of the re-estimated shared prior.
  double shared_prior_strength = 100.0;
};

/// Per-type output.
struct AttributeTypeResult {
  std::string type_name;
  TruthEstimate estimate;
  SourceQuality quality;
};

struct MultiAttributeResult {
  std::vector<AttributeTypeResult> per_type;
  /// The shared priors after the final coupling round.
  BetaPrior shared_alpha0;
  BetaPrior shared_alpha1;
};

/// Fits all `datasets` (one per attribute type, e.g. cast and directors;
/// they may have disjoint source vocabularies) with coupled quality
/// priors.
MultiAttributeResult RunMultiAttributeLtm(const std::vector<Dataset>& datasets,
                                          const MultiAttributeOptions& options);

}  // namespace ext
}  // namespace ltm

#endif  // LTM_EXT_MULTI_ATTRIBUTE_H_
