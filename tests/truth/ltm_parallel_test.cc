#include "truth/ltm_parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "synth/ltm_process.h"
#include "test_util.h"
#include "truth/ltm.h"
#include "truth/registry.h"

namespace ltm {
namespace {

LtmOptions SmallDataOptions() {
  LtmOptions opts;
  opts.alpha0 = BetaPrior{1.0, 100.0};
  opts.alpha1 = BetaPrior{1.0, 1.0};
  opts.beta = BetaPrior{1.0, 1.0};
  opts.iterations = 120;
  opts.burnin = 20;
  opts.sample_gap = 2;
  opts.seed = 7;
  return opts;
}

ClaimTable BuildTable(uint64_t seed) {
  RawDatabase raw = testing::RandomRaw(seed);
  FactTable facts = FactTable::Build(raw);
  return ClaimTable::Build(raw, facts);
}

// The tentpole pin: one shard over the CSR graph replays the sequential
// sampler's exact RNG stream and floating-point operation sequence, so
// the posteriors are bit-identical — not approximately equal.
TEST(ParallelLtmGibbsTest, SingleShardBitIdenticalToSequentialSampler) {
  ClaimTable table = BuildTable(55);
  ClaimGraph graph = ClaimGraph::Build(table);
  LtmOptions opts = SmallDataOptions();
  opts.threads = 1;

  TruthEstimate sequential = LtmGibbs(graph, opts).Run();
  TruthEstimate sharded = ParallelLtmGibbs(graph, opts).Run();
  ASSERT_EQ(sequential.probability.size(), sharded.probability.size());
  for (size_t f = 0; f < sequential.probability.size(); ++f) {
    EXPECT_EQ(sequential.probability[f], sharded.probability[f]) << "f=" << f;
  }
}

// Registry pin: LTM(threads=1) must flow through the sequential chain and
// reproduce LtmGibbs::Run bit for bit, like the PR 1 sampler did.
TEST(ParallelLtmGibbsTest, RegistryThreads1BitIdenticalToLtmGibbs) {
  RawDatabase raw = testing::RandomRaw(55);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  LtmOptions opts = SmallDataOptions();

  auto method = CreateMethod("LTM(threads=1)", opts);
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  TruthEstimate via_registry = (*method)->Score(facts, claims);
  TruthEstimate direct = LtmGibbs(claims, opts).Run();
  EXPECT_EQ(via_registry.probability, direct.probability);
}

TEST(ParallelLtmGibbsTest, MultiShardDeterministicAcrossRepeatedRuns) {
  ClaimTable table = BuildTable(71);
  ClaimGraph graph = ClaimGraph::Build(table);
  LtmOptions opts = SmallDataOptions();
  opts.threads = 4;

  TruthEstimate a = ParallelLtmGibbs(graph, opts).Run();
  TruthEstimate b = ParallelLtmGibbs(graph, opts).Run();
  EXPECT_EQ(a.probability, b.probability);
}

TEST(ParallelLtmGibbsTest, RegistryThreads4DeterministicForFixedSeed) {
  RawDatabase raw = testing::RandomRaw(71);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));

  auto method = CreateMethod("LTM(threads=4,seed=7)", SmallDataOptions());
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  TruthEstimate a = (*method)->Score(facts, claims);
  TruthEstimate b = (*method)->Score(facts, claims);
  EXPECT_EQ(a.probability, b.probability);

  // A different seed must give a different chain (same decisions are
  // fine; bit-identical posteriors are not).
  auto reseeded = CreateMethod("LTM(threads=4,seed=8)", SmallDataOptions());
  ASSERT_TRUE(reseeded.ok());
  TruthEstimate c = (*reseeded)->Score(facts, claims);
  EXPECT_NE(a.probability, c.probability);
}

// The merged count matrix must equal a fresh recount of the claim graph
// against the current truth vector after every parallel sweep — the
// invariant that catches barrier-merge bugs.
TEST(ParallelLtmGibbsTest, MergedCountsStayConsistentWithTruth) {
  ClaimTable table = BuildTable(29);
  ClaimGraph graph = ClaimGraph::Build(table);
  LtmOptions opts = SmallDataOptions();
  opts.threads = 3;
  ParallelLtmGibbs sampler(graph, opts);

  for (int sweep = 0; sweep < 5; ++sweep) {
    sampler.RunSweep();
    std::vector<int64_t> recount(table.NumSources() * 4, 0);
    for (const Claim& c : table.claims()) {
      const int i = sampler.truth()[c.fact];
      const int j = c.observation ? 1 : 0;
      ++recount[c.source * 4 + i * 2 + j];
    }
    for (SourceId s = 0; s < table.NumSources(); ++s) {
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          ASSERT_EQ(sampler.Count(s, i, j), recount[s * 4 + i * 2 + j])
              << "s=" << s << " i=" << i << " j=" << j << " sweep=" << sweep;
        }
      }
    }
  }
}

TEST(ParallelLtmGibbsTest, MultiShardRecoversTruthOnGoodSyntheticData) {
  synth::LtmProcessOptions gen;
  gen.num_facts = 800;
  gen.num_sources = 16;
  gen.alpha0 = BetaPrior{10.0, 90.0};
  gen.alpha1 = BetaPrior{90.0, 10.0};
  gen.seed = 21;
  synth::LtmProcessData data = synth::GenerateLtmProcess(gen);

  LtmOptions opts;
  opts.alpha0 = BetaPrior{10.0, 1000.0};
  opts.iterations = 100;
  opts.burnin = 20;
  opts.sample_gap = 4;
  opts.threads = 4;
  LatentTruthModel model(opts);
  TruthEstimate est = model.Score(data.facts, data.graph);
  PointMetrics m = EvaluateAtThreshold(est.probability, data.truth, 0.5);
  EXPECT_GT(m.accuracy(), 0.95) << m.confusion.ToString();
}

TEST(ParallelLtmGibbsTest, ThreadsZeroAutoResolvesAndRuns) {
  RawDatabase raw = testing::RandomRaw(13);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  auto method = CreateMethod("LTM(threads=0,iterations=30,burnin=5)");
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  TruthEstimate est = (*method)->Score(facts, claims);
  ASSERT_EQ(est.probability.size(), claims.NumFacts());
  for (double p : est.probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ParallelLtmGibbsTest, MoreShardsThanFactsIsHarmless) {
  RawDatabase raw = testing::RandomRaw(99, /*entities=*/2, /*max_attrs=*/2,
                                       /*sources=*/3);
  FactTable facts = FactTable::Build(raw);
  const ClaimGraph& graph = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  LtmOptions opts = SmallDataOptions();
  opts.threads = 64;
  TruthEstimate est = ParallelLtmGibbs(graph, opts).Run();
  EXPECT_EQ(est.probability.size(), graph.NumFacts());
}

TEST(ParallelLtmGibbsTest, EmptyClaimTable) {
  ClaimGraph graph = ClaimGraph::Build(ClaimTable());
  LtmOptions opts = SmallDataOptions();
  opts.threads = 4;
  TruthEstimate est = ParallelLtmGibbs(graph, opts).Run();
  EXPECT_TRUE(est.probability.empty());
}

TEST(ParallelLtmGibbsTest, CancelledContextStopsShardedRun) {
  RawDatabase raw = testing::RandomRaw(31);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  LtmOptions opts = SmallDataOptions();
  opts.threads = 4;
  LatentTruthModel model(opts);

  std::atomic<bool> cancel{true};  // cancelled before the first sweep
  RunContext ctx;
  ctx.cancel = &cancel;
  Result<TruthResult> result = model.Run(ctx, facts, claims);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(ParallelLtmGibbsTest, DeadlineExpiresShardedRun) {
  RawDatabase raw = testing::RandomRaw(31);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  LtmOptions opts = SmallDataOptions();
  opts.threads = 4;
  opts.iterations = 100000;  // would take far longer than the deadline
  opts.burnin = 0;
  LatentTruthModel model(opts);

  RunContext ctx;
  ctx.deadline_seconds = 0.02;
  Result<TruthResult> result = model.Run(ctx, facts, claims);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ParallelLtmGibbsTest, ShardedQualityReadOffMatchesSequentialShape) {
  Dataset ds = Dataset::FromRaw("paper", testing::PaperTable1());
  LtmOptions opts = SmallDataOptions();
  opts.threads = 2;
  LatentTruthModel model(opts);
  RunContext ctx;
  ctx.with_quality = true;
  Result<TruthResult> result = model.Run(ctx, ds.facts, ds.graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->quality.has_value());
  EXPECT_EQ(result->quality->specificity.size(), ds.graph.NumSources());
  EXPECT_EQ(result->quality->sensitivity.size(), ds.graph.NumSources());
}

TEST(ParallelLtmGibbsTest, LtmPosShardedUsesFilteredClaims) {
  RawDatabase raw = testing::RandomRaw(77, 40, 4, 12, 0.6);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  auto method = CreateMethod("LTMpos(threads=4,iterations=60,burnin=10)");
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  TruthEstimate est = (*method)->Score(facts, claims);
  // §6.2.1: positives only -> nothing scores below the prior.
  for (double p : est.probability) EXPECT_GE(p, 0.5);
}

TEST(LtmOptionsThreadsTest, ValidateRejectsOutOfRange) {
  LtmOptions opts;
  opts.threads = -1;
  EXPECT_FALSE(opts.Validate().ok());
  opts.threads = 2000;
  EXPECT_FALSE(opts.Validate().ok());
  opts.threads = 0;  // auto
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(LtmOptionsThreadsTest, SpecParsesThreads) {
  auto bad = CreateMethod("LTM(threads=-3)");
  EXPECT_FALSE(bad.ok());
  auto good = CreateMethod("LTM(threads=8)");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(RunMethodsConcurrentlyTest, MatchesSequentialRuns) {
  RawDatabase raw = testing::RandomRaw(17);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));
  LtmOptions base = SmallDataOptions();
  base.iterations = 40;
  base.burnin = 10;

  const std::vector<std::string> specs{"Voting", "LTM(threads=2)",
                                       "TruthFinder", "AvgLog"};
  RunContext ctx;
  std::vector<MethodRunOutcome> outcomes =
      RunMethodsConcurrently(specs, ctx, facts, claims, base);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(outcomes[i].spec, specs[i]);
    ASSERT_TRUE(outcomes[i].result.ok())
        << specs[i] << ": " << outcomes[i].result.status().ToString();
    auto method = CreateMethod(specs[i], base);
    ASSERT_TRUE(method.ok());
    Result<TruthResult> solo = (*method)->Run(RunContext(), facts, claims);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(outcomes[i].result->estimate.probability,
              solo->estimate.probability)
        << specs[i];
  }
}

TEST(RunMethodsConcurrentlyTest, BadSpecYieldsErrorOutcomeInOrder) {
  RawDatabase raw = testing::RandomRaw(17);
  FactTable facts = FactTable::Build(raw);
  ClaimGraph claims = ClaimGraph::Build(ClaimTable::Build(raw, facts));

  const std::vector<std::string> specs{"Voting", "NoSuchMethod", "AvgLog"};
  std::vector<MethodRunOutcome> outcomes = RunMethodsConcurrently(
      specs, RunContext(), facts, claims, SmallDataOptions());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].result.ok());
  EXPECT_EQ(outcomes[1].result.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(outcomes[2].result.ok());
}

}  // namespace
}  // namespace ltm
