#include "truth/three_estimates.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace ltm {

namespace {

/// Linearly rescales v onto [floor, 1 - floor]; a constant vector maps to
/// its clamped value.
void RescaleUnit(std::vector<double>* v, double floor) {
  if (v->empty()) return;
  double lo = (*v)[0];
  double hi = (*v)[0];
  for (double x : *v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi - lo < 1e-12) {
    for (double& x : *v) x = Clamp(x, floor, 1.0 - floor);
    return;
  }
  for (double& x : *v) {
    x = floor + (1.0 - 2.0 * floor) * (x - lo) / (hi - lo);
  }
}

}  // namespace

TruthEstimate ThreeEstimates::Run(const FactTable& facts,
                                  const ClaimTable& claims) const {
  (void)facts;
  const size_t num_facts = claims.NumFacts();
  const size_t num_sources = claims.NumSources();

  std::vector<double> truth(num_facts, 0.5);
  std::vector<double> error(num_sources, options_.initial_error);
  std::vector<double> difficulty(num_facts, options_.initial_difficulty);

  std::vector<size_t> claims_per_fact(num_facts, 0);
  std::vector<size_t> claims_per_source(num_sources, 0);
  for (const Claim& c : claims.claims()) {
    ++claims_per_fact[c.fact];
    ++claims_per_source[c.source];
  }

  const double floor = options_.floor;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // T(f) given eps, delta.
    std::fill(truth.begin(), truth.end(), 0.0);
    for (const Claim& c : claims.claims()) {
      const double wrong = Clamp(error[c.source] * difficulty[c.fact], floor,
                                 1.0 - floor);
      truth[c.fact] += c.observation ? 1.0 - wrong : wrong;
    }
    for (FactId f = 0; f < num_facts; ++f) {
      if (claims_per_fact[f] > 0) {
        truth[f] /= static_cast<double>(claims_per_fact[f]);
      } else {
        truth[f] = 0.5;
      }
    }
    RescaleUnit(&truth, floor);

    // delta(f) given T, eps.
    std::fill(difficulty.begin(), difficulty.end(), 0.0);
    for (const Claim& c : claims.claims()) {
      const double mistake = c.observation ? 1.0 - truth[c.fact] : truth[c.fact];
      difficulty[c.fact] += mistake / std::max(error[c.source], floor);
    }
    for (FactId f = 0; f < num_facts; ++f) {
      if (claims_per_fact[f] > 0) {
        difficulty[f] /= static_cast<double>(claims_per_fact[f]);
      } else {
        difficulty[f] = options_.initial_difficulty;
      }
    }
    RescaleUnit(&difficulty, floor);

    // eps(s) given T, delta.
    std::fill(error.begin(), error.end(), 0.0);
    for (const Claim& c : claims.claims()) {
      const double mistake = c.observation ? 1.0 - truth[c.fact] : truth[c.fact];
      error[c.source] += mistake / std::max(difficulty[c.fact], floor);
    }
    for (SourceId s = 0; s < num_sources; ++s) {
      if (claims_per_source[s] > 0) {
        error[s] /= static_cast<double>(claims_per_source[s]);
      } else {
        error[s] = options_.initial_error;
      }
    }
    RescaleUnit(&error, floor);
  }

  TruthEstimate est;
  est.probability = std::move(truth);
  return est;
}

}  // namespace ltm
