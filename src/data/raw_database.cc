#include "data/raw_database.h"

namespace ltm {

bool RawDatabase::Add(std::string_view entity, std::string_view attribute,
                      std::string_view source) {
  EntityId e = entities_.Intern(entity);
  AttributeId a = attributes_.Intern(attribute);
  SourceId s = sources_.Intern(source);
  return AddRow(e, a, s);
}

bool RawDatabase::AddRow(EntityId e, AttributeId a, SourceId s) {
  RawRow row{e, a, s};
  auto [it, inserted] = seen_.insert(row);
  (void)it;
  if (inserted) rows_.push_back(row);
  return inserted;
}

bool RawDatabase::Contains(EntityId e, AttributeId a, SourceId s) const {
  return seen_.contains(RawRow{e, a, s});
}

}  // namespace ltm
