#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace ltm {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

Rng::Rng(uint64_t seed) : seed_(seed), gen_(SplitMix64(seed).Next(), SplitMix64(seed ^ 0xabcdef12345ULL).Next()), seeder_(seed ^ 0x5851f42d4c957f2dULL) {}

Rng::Rng(uint64_t seed, uint64_t stream_id)
    : seed_(seed),
      gen_(SplitMix64(seed).Next(),
           SplitMix64(seed ^ (0xd6e8feb86659fd93ULL * (stream_id + 1))).Next()),
      seeder_(seed ^ 0x5851f42d4c957f2dULL ^ stream_id) {}

double Rng::Uniform() {
  // 53-bit mantissa from two 32-bit draws.
  uint64_t hi = gen_.Next();
  uint64_t lo = gen_.Next();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  if (n == 1) return 0;
  // Rejection sampling over 64-bit draws to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % n);
  for (;;) {
    uint64_t v = (static_cast<uint64_t>(gen_.Next()) << 32) | gen_.Next();
    if (v < limit) return v % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  // Marsaglia & Tsang (2000). For shape < 1, boost via U^(1/shape).
  if (shape < 1.0) {
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double Rng::Beta(double a, double b) {
  double x = Gamma(a);
  double y = Gamma(b);
  double s = x + y;
  if (s <= 0.0) return 0.5;  // Degenerate draw; both gammas underflowed.
  return x / s;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mu, double sigma) { return mu + sigma * Normal(); }

uint32_t Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    double v = Normal(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0u : static_cast<uint32_t>(v + 0.5);
  }
  double l = std::exp(-lambda);
  uint32_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= Uniform();
  } while (p > l);
  return k - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF by linear scan is O(n); instead use rejection against the
  // continuous bounding envelope (Devroye). Good enough for generator use.
  double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = Uniform();
    double v = Uniform();
    double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); accept into [1, n].
    if (x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(x) - 1;
    }
  }
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t child = seeder_.Next() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(child);
}

Rng Rng::SplitStream(uint64_t stream_id) const {
  // Two SplitMix64 rounds over (seed, stream_id) give a well-mixed child
  // seed; the private constructor additionally derives a per-stream PCG
  // increment so the streams differ in sequence, not just in phase.
  SplitMix64 mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  uint64_t child_seed = mix.Next();
  child_seed = SplitMix64(child_seed + stream_id).Next();
  return Rng(child_seed, stream_id);
}

}  // namespace ltm
