// Reproduces paper Table 9: wall-clock runtime of every method versus the
// number of entities (3k/6k/9k/12k/15k movies), averaged over several
// runs. Iterative methods run a fixed 100 iterations for fairness, as in
// the paper; LTMinc reuses pre-learned source quality.
//
// Additionally runs a thread-scaling sweep of the sharded LTM sampler
// (threads = 1/2/4/8) on the full-scale movie world — the same dataset
// bench_fig6_scalability's largest point uses — and writes the result to
// BENCH_scaling.json for the CI benchmark artifact.
//
// Flags (for the CI smoke job):
//   --scaling-only        skip Table 9, run only the scaling sweep
//   --movies N            shrink the movie world (default 15073)
//   --iterations N        Gibbs sweeps per run (default 100)
//   --repeats N           timed repeats per configuration (default 3)
//   --out FILE            JSON output path (default BENCH_scaling.json)

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/table_printer.h"
#include "truth/ltm.h"
#include "truth/ltm_incremental.h"
#include "truth/registry.h"

namespace ltm {
namespace bench {
namespace {

constexpr int kRepeats = 3;

double TimeMethod(TruthMethod* method, const Dataset& data) {
  double total = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    WallTimer timer;
    TruthEstimate est = method->Score(data.facts, data.graph);
    total += timer.ElapsedSeconds();
    if (est.probability.size() != data.facts.NumFacts()) return -1.0;
  }
  return total / kRepeats;
}

struct ScalingConfig {
  bool scaling_only = false;
  size_t movies = 15073;
  int iterations = 100;
  int repeats = kRepeats;
  std::string out = "BENCH_scaling.json";
};

/// Times `LTM(threads=N)` for each N on the full dataset and writes the
/// sweep as JSON. Returns false when the output file cannot be written.
bool RunScalingSweep(const BenchDataset& full, const ScalingConfig& cfg) {
  PrintHeader("Thread scaling: sharded LTM on the full movie world");
  std::printf("facts=%zu claims=%zu sources=%zu hardware_threads=%d\n\n",
              full.data.facts.NumFacts(), full.data.graph.NumClaims(),
              full.data.graph.NumSources(),
              ThreadPool::HardwareConcurrency());

  LtmOptions opts = full.ltm_options;
  opts.iterations = cfg.iterations;
  opts.burnin = std::min(opts.burnin, cfg.iterations / 2);
  opts.sample_gap = 1;
  // Pin one kernel across every row: under kAuto the threads=1 baseline
  // would run the reference kernel while threads>1 run fused, and the
  // speedup column (which CI gates >= 2x at threads=4) would measure the
  // kernel switch instead of sharding. The reference kernel is the right
  // subject here — it is compute-bound, so its sharding curve is the
  // near-linear PR-2 contract the gate was built for (the fused kernel
  // is fast enough to run into memory bandwidth well before 8 shards).
  // BENCH_kernel.json owns the kernel comparison; bench_micro's
  // BM_ShardedGibbsSweep shows the compounded production (kAuto) curve.
  opts.kernel = LtmKernel::kReference;

  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<double> seconds;
  TablePrinter table({"Threads", "Runtime (s)", "Speedup vs 1"});
  for (int threads : thread_counts) {
    opts.threads = threads;
    LatentTruthModel model(opts);
    model.Score(full.data.facts, full.data.graph);  // warm-up
    double total = 0.0;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      WallTimer timer;
      model.Score(full.data.facts, full.data.graph);
      total += timer.ElapsedSeconds();
    }
    seconds.push_back(total / cfg.repeats);
    table.AddRow({std::to_string(threads), FormatDouble(seconds.back(), 4),
                  FormatDouble(seconds.front() / seconds.back(), 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: near-linear up to the physical core count; the\n"
      "acceptance bar is >= 2x at threads=4 on a 4-core runner.\n");

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ltm_thread_scaling\",\n"
               "  \"dataset\": {\"movies\": %zu, \"facts\": %zu, "
               "\"claims\": %zu, \"sources\": %zu},\n"
               "  \"iterations\": %d,\n"
               "  \"repeats\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"results\": [",
               cfg.movies, full.data.facts.NumFacts(),
               full.data.graph.NumClaims(), full.data.graph.NumSources(),
               cfg.iterations, cfg.repeats,
               ThreadPool::HardwareConcurrency());
  for (size_t i = 0; i < seconds.size(); ++i) {
    std::fprintf(f, "%s\n    {\"threads\": %d, \"seconds\": %.6f, "
                    "\"speedup\": %.4f}",
                 i == 0 ? "" : ",", thread_counts[i], seconds[i],
                 seconds[0] / seconds[i]);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.out.c_str());
  return true;
}

bool Run(const ScalingConfig& cfg) {
  // Subsets are carved from one full-scale world so claim distributions
  // match across sizes.
  BenchDataset full = MakeMovieBench(cfg.movies);
  if (cfg.scaling_only) {
    return RunScalingSweep(full, cfg);
  }
  const std::vector<size_t> sizes{3000, 6000, 9000, 12000, 15073};

  std::vector<Dataset> subsets;
  for (size_t n : sizes) {
    // Subset keeps entities with id < bound; entity ids follow movie
    // generation order, so this matches "first n movies".
    subsets.push_back(full.data.Subset(full.data.raw.NumEntities() * n /
                                       sizes.back()));
  }

  // Source quality for LTMinc, learned once on the full data.
  LtmOptions opts = full.ltm_options;
  opts.iterations = 100;
  opts.burnin = 20;
  opts.sample_gap = 4;
  LatentTruthModel model(opts);
  SourceQuality quality;
  model.RunWithQuality(full.data.graph, &quality);

  PrintHeader("Table 9: runtimes (seconds) vs #entities on the movie data");
  std::vector<std::string> header{"Method"};
  for (size_t i = 0; i < sizes.size(); ++i) {
    header.push_back(std::to_string(sizes[i] / 1000) + "k");
  }
  TablePrinter table(header);

  // Order as in the paper: cheap streaming methods first, LTM last.
  std::vector<std::string> order{"Voting",           "AvgLog",
                                 "HubAuthority",     "PooledInvestment",
                                 "TruthFinder",      "Investment",
                                 "3-Estimates",      "LTM"};

  {
    std::vector<double> times;
    for (const Dataset& sub : subsets) {
      LtmIncremental inc(quality, opts);
      times.push_back(TimeMethod(&inc, sub));
    }
    table.AddRow("LTMinc", times, 4);
  }
  for (const std::string& name : order) {
    auto method = CreateMethod(name, opts);
    std::vector<double> times;
    for (const Dataset& sub : subsets) {
      times.push_back(TimeMethod(method->get(), sub));
    }
    table.AddRow(name, times, 4);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): all methods scale linearly; Voting and\n"
      "LTMinc are the cheapest; LTM costs a small constant factor (3-5x)\n"
      "over the simpler iterative baselines.\n");

  return RunScalingSweep(full, cfg);
}

}  // namespace
}  // namespace bench
}  // namespace ltm

int main(int argc, char** argv) {
  ltm::bench::ScalingConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(arg, "--scaling-only") == 0) {
      cfg.scaling_only = true;
    } else if (std::strcmp(arg, "--movies") == 0) {
      const long movies = std::atol(next());
      if (movies <= 0) {
        std::fprintf(stderr, "--movies must be > 0\n");
        return 2;
      }
      cfg.movies = static_cast<size_t>(movies);
    } else if (std::strcmp(arg, "--iterations") == 0) {
      cfg.iterations = std::atoi(next());
    } else if (std::strcmp(arg, "--repeats") == 0) {
      cfg.repeats = std::atoi(next());
    } else if (std::strcmp(arg, "--out") == 0) {
      cfg.out = next();
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expected --scaling-only, --movies N, "
                   "--iterations N, --repeats N, --out FILE)\n",
                   arg);
      return 2;
    }
  }
  if (cfg.iterations <= 0 || cfg.repeats <= 0 || cfg.out.empty()) {
    std::fprintf(stderr,
                 "iterations and repeats must be > 0; --out needs a path\n");
    return 2;
  }
  return ltm::bench::Run(cfg) ? 0 : 1;
}
