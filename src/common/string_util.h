#ifndef LTM_COMMON_STRING_UTIL_H_
#define LTM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ltm {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Fixed-precision decimal formatting (e.g. FormatDouble(0.12345, 3) ==
/// "0.123"). Used by table printers so reproduction output is stable.
std::string FormatDouble(double v, int precision);

}  // namespace ltm

#endif  // LTM_COMMON_STRING_UTIL_H_
