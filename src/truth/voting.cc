#include "truth/voting.h"

namespace ltm {

TruthEstimate Voting::Run(const FactTable& facts,
                          const ClaimTable& claims) const {
  (void)facts;
  TruthEstimate est;
  est.probability.resize(claims.NumFacts(), 0.0);
  for (FactId f = 0; f < claims.NumFacts(); ++f) {
    auto fact_claims = claims.ClaimsOfFact(f);
    if (fact_claims.empty()) continue;
    size_t pos = 0;
    for (const Claim& c : fact_claims) {
      if (c.observation) ++pos;
    }
    est.probability[f] =
        static_cast<double>(pos) / static_cast<double>(fact_claims.size());
  }
  return est;
}

}  // namespace ltm
