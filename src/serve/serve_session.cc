#include "serve/serve_session.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "obs/trace.h"

namespace ltm {
namespace serve {

namespace {

uint64_t ElapsedMicros(const WallTimer& timer) {
  const double us = timer.ElapsedSeconds() * 1e6;
  return us <= 0.0 ? 0 : static_cast<uint64_t>(us);
}

}  // namespace

ServeSession::ServeSession(ext::StreamingPipeline* pipeline,
                           ServeOptions options)
    : pipeline_(pipeline),
      store_(pipeline->attached_store()),
      options_(options),
      ltm_options_(pipeline->options().ltm) {
  obs::MetricsRegistry* reg = store_->metrics();
  queries_ = reg->counter("ltm_serve_queries_total");
  snapshot_queries_ = reg->counter("ltm_serve_snapshot_queries_total");
  range_queries_ = reg->counter("ltm_serve_range_queries_total");
  coalesced_ = reg->counter("ltm_serve_coalesced_total");
  shed_ = reg->counter("ltm_serve_shed_total");
  slice_computes_ = reg->counter("ltm_serve_slice_computes_total");
  query_micros_ = reg->histogram("ltm_serve_query_micros");
  quality_version_gauge_ = reg->gauge("ltm_serve_quality_version");
}

Result<std::unique_ptr<ServeSession>> ServeSession::Create(
    ext::StreamingPipeline* pipeline, ServeOptions options,
    ThreadPool* pool) {
  if (pipeline == nullptr) {
    return Status::InvalidArgument("ServeSession: pipeline is null");
  }
  if (pipeline->attached_store() == nullptr) {
    return Status::FailedPrecondition(
        "ServeSession: pipeline has no attached store; call "
        "BootstrapFromStore first");
  }
  LTM_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<ServeSession> session(
      new ServeSession(pipeline, options));
  LTM_RETURN_IF_ERROR(session->RefreshQuality());
  if (options.refit_debounce_epochs > 0) {
    if (pool == nullptr) pool = &ThreadPool::Shared();
    RefitSchedulerOptions sched;
    sched.debounce_epochs = options.refit_debounce_epochs;
    sched.max_queue = options.refit_queue;
    ServeSession* raw = session.get();
    session->scheduler_ = std::make_unique<RefitScheduler>(
        pool,
        [raw](const RunContext& ctx) -> Result<uint64_t> {
          MutexLock plock(raw->pipeline_mu_);
          // Background refits publish their per-sweep Gibbs timing into
          // the store's registry alongside the serve counters.
          RunContext refit_ctx = ctx;
          refit_ctx.metrics = raw->store_->metrics();
          LTM_ASSIGN_OR_RETURN(const uint64_t fit_epoch,
                               raw->pipeline_->RefitFromStore(refit_ctx));
          raw->InstallQualityLocked();
          return fit_epoch;
        },
        sched, pipeline->last_fit_epoch(),
        pipeline->attached_store()->metrics());
  }
  return session;
}

ServeSession::~ServeSession() {
  // The scheduler's destructor cancels and drains its pool job before
  // any member it captured goes away.
  scheduler_.reset();
}

Status ServeSession::RefreshQuality() {
  MutexLock plock(pipeline_mu_);
  InstallQualityLocked();
  return Status::OK();
}

void ServeSession::InstallQualityLocked() {
  auto next = std::make_shared<VersionedQuality>();
  next->lookup = BuildQualityLookup(
      pipeline_->quality(), pipeline_->cumulative_sources(), ltm_options_);
  MutexLock lock(mu_);
  next->version = quality_versions_installed_++;
  quality_version_gauge_->Set(static_cast<int64_t>(next->version));
  quality_ = std::move(next);
  // A new fit changes every posterior at an unchanged epoch, so cached
  // entries keyed under older quality versions must go — from every
  // partition's cache.
  store_->ClearPosteriorCaches();
}

std::shared_ptr<const ServeSession::VersionedQuality>
ServeSession::CurrentQuality() const {
  MutexLock lock(mu_);
  return quality_;
}

Status ServeSession::NotifyIngest() {
  if (scheduler_ == nullptr) return Status::OK();
  return scheduler_->NotifyPartitionEpochs(store_->PartitionEpochs());
}

Result<double> ServeSession::Query(const FactRef& fact,
                                   const RunContext& ctx) {
  obs::ObsSpan span("query");
  const WallTimer timer;
  queries_->Increment();
  // Reads observe epoch advances too (a foreign writer may never call
  // NotifyIngest); admission feedback from a read-side poke is folded
  // into Stats().refit rather than failing the read.
  if (scheduler_ != nullptr) {
    (void)scheduler_->NotifyPartitionEpochs(store_->PartitionEpochs());
  }
  Result<double> result = QueryInner(fact, ctx);
  if (!result.ok() && result.status().code() == StatusCode::kResourceExhausted) {
    shed_->Increment();
  }
  query_micros_->Record(ElapsedMicros(timer));
  return result;
}

Result<double> ServeSession::QueryInner(const FactRef& fact,
                                        const RunContext& ctx) {
  RunObserver obs(ctx, "ServeSession::Query");
  const std::shared_ptr<const VersionedQuality> quality = CurrentQuality();
  const std::string fact_key = FactKey(fact);
  const std::string cache_key = CacheKey(fact_key, quality->version);
  if (const auto hit = cache_for(fact.entity).Get(cache_key, store_->epoch())) {
    return *hit;
  }

  // Singleflight: one slice computation per (entity, quality version) at
  // a time; everyone else waits for it and shares the result.
  const std::string slice_key =
      fact.entity + "\x1f" + std::to_string(quality->version);
  std::shared_ptr<Inflight> entry;
  bool leader = false;
  {
    MutexLock lock(mu_);
    const auto it = inflight_.find(slice_key);
    if (it != inflight_.end()) {
      entry = it->second;
    } else {
      if (inflight_.size() >= options_.max_inflight) {
        return Status::ResourceExhausted(
            "serve: " + std::to_string(inflight_.size()) +
            " slice computations in flight (max_inflight=" +
            std::to_string(options_.max_inflight) + "); query shed");
      }
      entry = std::make_shared<Inflight>();
      inflight_.emplace(slice_key, entry);
      leader = true;
    }
  }

  if (leader) {
    if (options_.batch_window_us > 0) {
      // Pile-on window: near-simultaneous lookups for this entity join
      // the map entry while we linger, then share the one computation.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.batch_window_us));
    }
    Result<SliceScore> computed =
        ComputeEntitySlice(fact.entity, *quality, obs.NestedContext());
    {
      MutexLock lock(mu_);
      if (computed.ok()) {
        entry->score = std::move(*computed);
      } else {
        entry->error = computed.status();
      }
      entry->done = true;
      inflight_.erase(slice_key);
      cv_.NotifyAll();
    }
  } else {
    MutexLock lock(mu_);
    while (!entry->done) {
      cv_.WaitFor(mu_, std::chrono::milliseconds(20));
      if (!entry->done) LTM_RETURN_IF_ERROR(obs.Check());
    }
    coalesced_->Increment();
  }

  // entry is immutable once done (the leader's last write under mu_ was
  // observed above, or made by this thread).
  if (!entry->error.ok()) return entry->error;
  const auto it = entry->score.posteriors.find(fact_key);
  const double posterior = it != entry->score.posteriors.end()
                               ? it->second
                               : quality->lookup.no_claim_prior;
  if (it == entry->score.posteriors.end()) {
    // The slice fill only covered facts that exist; cache the no-claim
    // prior for this queried-but-absent fact so repeat lookups hit.
    cache_for(fact.entity).Put(cache_key, entry->score.epoch, posterior);
  }
  return posterior;
}

Result<ServeSession::SliceScore> ServeSession::ComputeEntitySlice(
    const std::string& entity, const VersionedQuality& quality,
    const RunContext& ctx) {
  obs::ObsSpan span("slice_compute");
  slice_computes_->Increment();
  const auto pin = store_->PinSnapshot(&entity, &entity);
  SliceScore out;
  out.epoch = pin->epoch();
  LTM_ASSIGN_OR_RETURN(const Dataset slice,
                       store_->MaterializeSnapshot(*pin, &entity, &entity));
  if (slice.facts.NumFacts() == 0) return out;
  LTM_ASSIGN_OR_RETURN(const std::vector<double> probs,
                       ScoreSlice(slice, quality.lookup, ltm_options_, ctx));
  for (size_t f = 0; f < slice.facts.NumFacts(); ++f) {
    const Fact& fact = slice.facts.fact(static_cast<FactId>(f));
    std::string key = std::string(slice.raw.entities().Get(fact.entity));
    key += "\t";
    key += slice.raw.attributes().Get(fact.attribute);
    // The slice spans exactly [entity, entity], so every fact lives in
    // `entity`'s partition cache.
    cache_for(entity).Put(CacheKey(key, quality.version), out.epoch, probs[f]);
    out.posteriors.emplace(std::move(key), probs[f]);
  }
  return out;
}

Result<std::vector<double>> ServeSession::QueryBatch(
    const std::vector<FactRef>& facts, const RunContext& ctx) {
  // One observer spans the batch so the deadline budget covers the whole
  // call, not each item afresh.
  RunObserver obs(ctx, "ServeSession::QueryBatch");
  std::vector<double> out;
  out.reserve(facts.size());
  for (const FactRef& fact : facts) {
    LTM_ASSIGN_OR_RETURN(const double p, Query(fact, obs.NestedContext()));
    out.push_back(p);
  }
  return out;
}

Result<std::vector<ServedFact>> ServeSession::QueryEntityRange(
    const std::string& min_entity, const std::string& max_entity,
    const RunContext& ctx) {
  range_queries_->Increment();
  RunObserver obs(ctx, "ServeSession::QueryEntityRange");
  const std::shared_ptr<const VersionedQuality> quality = CurrentQuality();
  const auto pin = store_->PinSnapshot(&min_entity, &max_entity);
  LTM_ASSIGN_OR_RETURN(
      const Dataset slice,
      store_->MaterializeSnapshot(*pin, &min_entity, &max_entity));
  std::vector<ServedFact> out;
  if (slice.facts.NumFacts() == 0) return out;
  LTM_ASSIGN_OR_RETURN(
      const std::vector<double> probs,
      ScoreSlice(slice, quality->lookup, ltm_options_, obs.NestedContext()));
  out.reserve(slice.facts.NumFacts());
  for (size_t f = 0; f < slice.facts.NumFacts(); ++f) {
    const Fact& fact = slice.facts.fact(static_cast<FactId>(f));
    ServedFact served;
    served.entity = std::string(slice.raw.entities().Get(fact.entity));
    served.attribute = std::string(slice.raw.attributes().Get(fact.attribute));
    served.posterior = probs[f];
    cache_for(served.entity)
        .Put(CacheKey(served.entity + "\t" + served.attribute,
                      quality->version),
             pin->epoch(), probs[f]);
    out.push_back(std::move(served));
  }
  // Materialization order is global *ingest* order (it must be — the
  // scoring above depends on it). The API contract is global
  // lexicographic entity order regardless of partition layout; the
  // stable sort keeps facts of one entity in ingest order.
  std::stable_sort(out.begin(), out.end(),
                   [](const ServedFact& a, const ServedFact& b) {
                     return a.entity < b.entity;
                   });
  return out;
}

std::unique_ptr<ServeSnapshot> ServeSession::AcquireSnapshot() {
  return std::unique_ptr<ServeSnapshot>(
      new ServeSnapshot(this, store_->PinSnapshot(), CurrentQuality()));
}

ServeStats ServeSession::Stats() const {
  ServeStats stats;
  stats.queries = queries_->Value();
  stats.snapshot_queries = snapshot_queries_->Value();
  stats.range_queries = range_queries_->Value();
  stats.coalesced = coalesced_->Value();
  stats.shed = shed_->Value();
  stats.slice_computes = slice_computes_->Value();
  stats.cache = store_->PosteriorCacheStats();
  const store::TruthStoreStats store_stats = store_->Stats();
  stats.block_cache = store_stats.block_cache;
  stats.bloom_point_skips = store_stats.bloom_point_skips;
  if (scheduler_ != nullptr) stats.refit = scheduler_->Stats();
  stats.epoch = store_->epoch();
  {
    MutexLock lock(mu_);
    stats.quality_version = quality_->version;
  }
  stats.live_pins = store_->num_pinned_epochs();
  stats.latency = query_micros_->Snapshot();
  stats.unix_micros = static_cast<int64_t>(obs::NowUnixMicros());
  return stats;
}

Result<double> ServeSnapshot::Query(const FactRef& fact,
                                    const RunContext& ctx) {
  obs::ObsSpan span("query");
  const WallTimer timer;
  session_->snapshot_queries_->Increment();
  RunObserver obs(ctx, "ServeSnapshot::Query");
  const std::string fact_key = ServeSession::FactKey(fact);
  const std::string cache_key =
      ServeSession::CacheKey(fact_key, quality_->version);
  store::PosteriorCache& cache = session_->cache_for(fact.entity);
  if (const auto hit = cache.Get(cache_key, pin_->epoch())) {
    session_->query_micros_->Record(ElapsedMicros(timer));
    return *hit;
  }
  // Bloom short-circuit: when every segment's filter denies the
  // (entity, attribute) pair and the pin's memtable has no exact match,
  // the fact cannot exist — serve the no-claim prior without reading a
  // single data block. Blooms have no false negatives, so this is the
  // same answer the materialize below would have produced.
  LTM_ASSIGN_OR_RETURN(const bool may_exist,
                       session_->store_->SnapshotFactMayExist(
                           *pin_, fact.entity, fact.attribute));
  if (!may_exist) {
    const double prior = quality_->lookup.no_claim_prior;
    cache.Put(cache_key, pin_->epoch(), prior);
    session_->query_micros_->Record(ElapsedMicros(timer));
    return prior;
  }
  // Recompute from this snapshot's own pin: the same replay order a
  // sequential materialize at the pinned epoch would use, so the result
  // is bit-identical no matter what runs concurrently.
  LTM_ASSIGN_OR_RETURN(
      const Dataset slice,
      session_->store_->MaterializeSnapshot(*pin_, &fact.entity,
                                            &fact.entity));
  double posterior = quality_->lookup.no_claim_prior;
  const auto eid = slice.raw.entities().Find(fact.entity);
  const auto aid = slice.raw.attributes().Find(fact.attribute);
  if (eid.has_value() && aid.has_value()) {
    if (const auto f = slice.facts.Find(*eid, *aid)) {
      LTM_ASSIGN_OR_RETURN(const std::vector<double> probs,
                           ScoreSlice(slice, quality_->lookup,
                                      session_->ltm_options_,
                                      obs.NestedContext()));
      posterior = probs[*f];
    }
  }
  // Best-effort warm: dropped by the downgrade guard when the live cache
  // already holds a fresher-epoch entry for this key.
  cache.Put(cache_key, pin_->epoch(), posterior);
  session_->query_micros_->Record(ElapsedMicros(timer));
  return posterior;
}

Result<std::vector<double>> ServeSnapshot::QueryBatch(
    const std::vector<FactRef>& facts, const RunContext& ctx) {
  RunObserver obs(ctx, "ServeSnapshot::QueryBatch");
  std::vector<double> out;
  out.reserve(facts.size());
  for (const FactRef& fact : facts) {
    LTM_ASSIGN_OR_RETURN(const double p, Query(fact, obs.NestedContext()));
    out.push_back(p);
  }
  return out;
}

}  // namespace serve
}  // namespace ltm
