// Fuzz target for the block-segment and manifest-log parsers — the two
// binary formats the store trusts at Open. Segment files carry a footer
// whose offsets/sizes/counts are all attacker-controllable on disk, so
// the parser must survive torn footers, forged index offsets, restart
// offsets pointing past the block, allocation-bomb block/row counts, and
// checksum mismatches with a Status — never a crash, hang, or giant
// reserve. The same bytes are also fed to the MANIFEST record parser,
// which has its own torn-tail and count-bomb handling.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "store/manifest.h"
#include "store/segment.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto segment = ltm::store::ParseBlockSegmentFromBytes(bytes, "fuzz-input");
  if (segment.ok()) {
    // Walk what a successful parse claims to have verified so the
    // sanitizers check the established invariants.
    size_t total = segment->rows.size() + segment->blocks.size() +
                   segment->footer.num_blocks;
    (void)total;
  }
  auto manifest = ltm::store::LoadManifestFromBytes(bytes, "fuzz-input");
  if (manifest.ok()) {
    size_t total =
        manifest->manifest.segments.size() + manifest->records;
    (void)total;
  }
  return 0;
}
